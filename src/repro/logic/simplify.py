"""Formula simplification: constant folding, NNF, free-variable queries."""

from __future__ import annotations

from repro.logic.ast import (
    FALSE,
    TRUE,
    And,
    AtLeast,
    AtMost,
    Const,
    Exactly,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    Xor,
)


def free_vars(formula: Formula) -> set[str]:
    """Return the names of all variables occurring in *formula*."""
    out: set[str] = set()
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            out.add(node.name)
        elif isinstance(node, Not):
            stack.append(node.child)
        elif isinstance(node, (And, Or)):
            stack.extend(node.children)
        elif isinstance(node, Implies):
            stack.append(node.antecedent)
            stack.append(node.consequent)
        elif isinstance(node, (Iff, Xor)):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, (AtMost, AtLeast, Exactly)):
            stack.extend(node.children)
    return out


def simplify(formula: Formula) -> Formula:
    """Fold constants and collapse degenerate connectives.

    The result is logically equivalent; it contains TRUE/FALSE only if the
    whole formula is constant.
    """
    if isinstance(formula, (Const, Var)):
        return formula
    if isinstance(formula, Not):
        child = simplify(formula.child)
        if isinstance(child, Const):
            return FALSE if child.value else TRUE
        if isinstance(child, Not):
            return child.child
        return Not(child)
    if isinstance(formula, And):
        kids = []
        for c in formula.children:
            s = simplify(c)
            if isinstance(s, Const):
                if not s.value:
                    return FALSE
                continue
            kids.append(s)
        if not kids:
            return TRUE
        if len(kids) == 1:
            return kids[0]
        return And(*kids)
    if isinstance(formula, Or):
        kids = []
        for c in formula.children:
            s = simplify(c)
            if isinstance(s, Const):
                if s.value:
                    return TRUE
                continue
            kids.append(s)
        if not kids:
            return FALSE
        if len(kids) == 1:
            return kids[0]
        return Or(*kids)
    if isinstance(formula, Implies):
        a = simplify(formula.antecedent)
        b = simplify(formula.consequent)
        if isinstance(a, Const):
            return b if a.value else TRUE
        if isinstance(b, Const):
            return TRUE if b.value else simplify(Not(a))
        return Implies(a, b)
    if isinstance(formula, Iff):
        a = simplify(formula.left)
        b = simplify(formula.right)
        if isinstance(a, Const):
            return b if a.value else simplify(Not(b))
        if isinstance(b, Const):
            return a if b.value else simplify(Not(a))
        if a == b:
            return TRUE
        return Iff(a, b)
    if isinstance(formula, Xor):
        a = simplify(formula.left)
        b = simplify(formula.right)
        if isinstance(a, Const):
            return simplify(Not(b)) if a.value else b
        if isinstance(b, Const):
            return simplify(Not(a)) if b.value else a
        if a == b:
            return FALSE
        return Xor(a, b)
    if isinstance(formula, (AtMost, AtLeast, Exactly)):
        kids = [simplify(c) for c in formula.children]
        fixed_true = sum(1 for c in kids if isinstance(c, Const) and c.value)
        rest = [c for c in kids if not isinstance(c, Const)]
        bound = formula.bound - fixed_true
        if isinstance(formula, AtMost):
            if bound < 0:
                return FALSE
            if bound >= len(rest):
                return TRUE
            return AtMost(bound, rest)
        if isinstance(formula, AtLeast):
            if bound <= 0:
                return TRUE
            if bound > len(rest):
                return FALSE
            return AtLeast(bound, rest)
        # Exactly
        if bound < 0 or bound > len(rest):
            return FALSE
        if not rest:
            return TRUE
        return Exactly(bound, rest)
    raise TypeError(f"unknown formula node: {formula!r}")


def to_nnf(formula: Formula, negate: bool = False) -> Formula:
    """Rewrite to negation normal form (negations only on variables).

    Cardinality nodes are rewritten under negation using their duals
    (¬AtMost(k) = AtLeast(k+1), etc.).
    """
    if isinstance(formula, Const):
        return Const(formula.value != negate)
    if isinstance(formula, Var):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return to_nnf(formula.child, not negate)
    if isinstance(formula, And):
        kids = [to_nnf(c, negate) for c in formula.children]
        return Or(*kids) if negate else And(*kids)
    if isinstance(formula, Or):
        kids = [to_nnf(c, negate) for c in formula.children]
        return And(*kids) if negate else Or(*kids)
    if isinstance(formula, Implies):
        # a -> b  ==  ¬a ∨ b
        return to_nnf(Or(Not(formula.antecedent), formula.consequent), negate)
    if isinstance(formula, Iff):
        a, b = formula.left, formula.right
        expanded = Or(And(a, b), And(Not(a), Not(b)))
        return to_nnf(expanded, negate)
    if isinstance(formula, Xor):
        a, b = formula.left, formula.right
        expanded = Or(And(a, Not(b)), And(Not(a), b))
        return to_nnf(expanded, negate)
    if isinstance(formula, AtMost):
        kids = [to_nnf(c, False) for c in formula.children]
        if negate:
            return AtLeast(formula.bound + 1, kids)
        return AtMost(formula.bound, kids)
    if isinstance(formula, AtLeast):
        kids = [to_nnf(c, False) for c in formula.children]
        if negate:
            if formula.bound == 0:
                return FALSE
            return AtMost(formula.bound - 1, kids)
        return AtLeast(formula.bound, kids)
    if isinstance(formula, Exactly):
        kids = [to_nnf(c, False) for c in formula.children]
        if negate:
            return Or(
                AtMost(formula.bound - 1, kids) if formula.bound > 0 else FALSE,
                AtLeast(formula.bound + 1, kids),
            )
        return Exactly(formula.bound, kids)
    raise TypeError(f"unknown formula node: {formula!r}")


def evaluate(formula: Formula, assignment: dict[str, bool]) -> bool:
    """Evaluate *formula* under a total assignment of its variables."""
    if isinstance(formula, Const):
        return formula.value
    if isinstance(formula, Var):
        return assignment[formula.name]
    if isinstance(formula, Not):
        return not evaluate(formula.child, assignment)
    if isinstance(formula, And):
        return all(evaluate(c, assignment) for c in formula.children)
    if isinstance(formula, Or):
        return any(evaluate(c, assignment) for c in formula.children)
    if isinstance(formula, Implies):
        return (not evaluate(formula.antecedent, assignment)) or evaluate(
            formula.consequent, assignment
        )
    if isinstance(formula, Iff):
        return evaluate(formula.left, assignment) == evaluate(
            formula.right, assignment
        )
    if isinstance(formula, Xor):
        return evaluate(formula.left, assignment) != evaluate(
            formula.right, assignment
        )
    if isinstance(formula, (AtMost, AtLeast, Exactly)):
        count = sum(1 for c in formula.children if evaluate(c, assignment))
        if isinstance(formula, AtMost):
            return count <= formula.bound
        if isinstance(formula, AtLeast):
            return count >= formula.bound
        return count == formula.bound
    raise TypeError(f"unknown formula node: {formula!r}")
