"""Pseudo-Boolean constraints: weighted sums of literals vs. a bound.

Encodes constraints of the form ``sum(w_i * lit_i) <= k`` (and friends)
to CNF using the *generalized totalizer* (GTE) with saturation: node
outputs are value-labelled "sum >= v" literals, and every partial sum
above ``k`` collapses into a single saturated value ``k+1``, keeping node
dictionaries at most ``k+1`` entries wide.

Negative weights are normalized away by the identity
``w*x == w - w*(1-x)``, and equalities split into two inequalities.

The reasoning engine uses this for resource budgets (cores, SmartNIC
capacity, power, cost) and the MaxSAT layer for objective bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

NewVar = Callable[[], int]


@dataclass(frozen=True)
class PBTerm:
    """One ``weight * literal`` term of a pseudo-Boolean sum."""

    weight: int
    lit: int

    def __post_init__(self):
        if self.lit == 0:
            raise ValueError("literal 0 is invalid in a PB term")
        if not isinstance(self.weight, int):
            raise TypeError(f"PB weight must be int, got {self.weight!r}")


def normalize_pb(
    terms: Sequence[PBTerm], bound: int
) -> tuple[list[PBTerm], int]:
    """Rewrite so every weight is positive and duplicate literals merge.

    Returns the equivalent ``(terms, bound)`` for ``sum <= bound``.
    Opposite-polarity literal pairs are folded using ``x + (1-x) == 1``.
    """
    by_lit: dict[int, int] = {}
    for term in terms:
        if term.weight == 0:
            continue
        by_lit[term.lit] = by_lit.get(term.lit, 0) + term.weight
    # Fold w1*x + w2*(-x): move min(w1, w2) into the constant.
    for lit in list(by_lit):
        if lit > 0 and -lit in by_lit:
            w_pos, w_neg = by_lit[lit], by_lit[-lit]
            common = min(w_pos, w_neg)
            bound -= common
            by_lit[lit] = w_pos - common
            by_lit[-lit] = w_neg - common
    out: list[PBTerm] = []
    for lit, weight in by_lit.items():
        if weight == 0:
            continue
        if weight < 0:
            # w*x == w - w*(not x); move the constant to the bound.
            bound -= weight
            out.append(PBTerm(-weight, -lit))
        else:
            out.append(PBTerm(weight, lit))
    return out, bound


class GeneralizedTotalizer:
    """Value-labelled counting tree over weighted literals.

    ``geq_literal(v)`` (for achievable v) is a literal implied whenever the
    true-literal weights sum to at least ``v``. Sums above the saturation
    cap all map to the cap value, so asserting the cap's negation encodes
    ``sum <= cap - 1``. Bounds can be tightened incrementally by asserting
    negations of larger values first — the MaxSAT engine relies on this.
    """

    def __init__(
        self,
        terms: Sequence[PBTerm],
        cap: int,
        new_var: NewVar,
        clauses: list[list[int]] | None = None,
    ):
        if cap < 1:
            raise ValueError(f"saturation cap must be >= 1, got {cap}")
        self.cap = cap
        self.clauses: list[list[int]] = clauses if clauses is not None else []
        self._new_var = new_var
        positive = [t for t in terms if t.weight > 0]
        if any(t.weight < 0 for t in terms):
            raise ValueError("normalize_pb must be applied first (negative weight)")
        if not positive:
            self.node: dict[int, int] = {}
        else:
            self.node = self._build(list(positive))

    def _build(self, terms: list[PBTerm]) -> dict[int, int]:
        if len(terms) == 1:
            term = terms[0]
            value = min(term.weight, self.cap)
            return {value: term.lit}
        mid = len(terms) // 2
        return self._merge(self._build(terms[:mid]), self._build(terms[mid:]))

    def _merge(self, left: dict[int, int], right: dict[int, int]) -> dict[int, int]:
        values: set[int] = set()
        for a in left:
            values.add(min(a, self.cap))
        for b in right:
            values.add(min(b, self.cap))
        for a in left:
            for b in right:
                values.add(min(a + b, self.cap))
        node = {v: self._new_var() for v in sorted(values)}
        # Implications: child sums force parent outputs.
        for a, alit in left.items():
            self.clauses.append([-alit, node[min(a, self.cap)]])
        for b, blit in right.items():
            self.clauses.append([-blit, node[min(b, self.cap)]])
        for a, alit in left.items():
            for b, blit in right.items():
                self.clauses.append([-alit, -blit, node[min(a + b, self.cap)]])
        # Ordering chain: sum >= v implies sum >= v' for v' < v.
        ordered = sorted(node)
        for lo, hi in zip(ordered, ordered[1:]):
            self.clauses.append([-node[hi], node[lo]])
        return node

    def values(self) -> list[int]:
        """Achievable (saturated) sum values, ascending."""
        return sorted(self.node)

    def geq_literal(self, value: int) -> int | None:
        """Literal for "sum >= value", or None if no achievable value >= it.

        Returns the literal of the smallest achievable value >= *value*
        (sound for asserting upper bounds via its negation).
        """
        candidates = [v for v in self.node if v >= value]
        if not candidates:
            return None
        return self.node[min(candidates)]

    def assert_leq(self, bound: int) -> list[list[int]]:
        """Clauses asserting ``sum <= bound``."""
        if bound < 0:
            return [[]]
        lit = self.geq_literal(bound + 1)
        if lit is None:
            return []
        return [[-lit]]


def encode_pb_leq(
    terms: Sequence[PBTerm],
    bound: int,
    new_var: NewVar,
) -> list[list[int]]:
    """Encode ``sum(w_i * lit_i) <= bound`` to clauses."""
    norm_terms, norm_bound = normalize_pb(terms, bound)
    if norm_bound < 0:
        return [[]]
    if not norm_terms:
        return []
    total = sum(t.weight for t in norm_terms)
    if total <= norm_bound:
        return []
    # Terms that individually exceed the bound must be false.
    forced = [t for t in norm_terms if t.weight > norm_bound]
    rest = [t for t in norm_terms if t.weight <= norm_bound]
    clauses: list[list[int]] = [[-t.lit] for t in forced]
    if not rest:
        return clauses
    if sum(t.weight for t in rest) <= norm_bound:
        return clauses
    gte = GeneralizedTotalizer(rest, cap=norm_bound + 1, new_var=new_var)
    clauses.extend(gte.clauses)
    clauses.extend(gte.assert_leq(norm_bound))
    return clauses


def encode_pb_geq(
    terms: Sequence[PBTerm],
    bound: int,
    new_var: NewVar,
) -> list[list[int]]:
    """Encode ``sum(w_i * lit_i) >= bound`` via the <= dual.

    ``sum(w*x) >= b`` is ``sum(-w*x) <= -b``; :func:`normalize_pb` then
    removes the negative weights.
    """
    negated = [PBTerm(-t.weight, t.lit) for t in terms]
    return encode_pb_leq(negated, -bound, new_var)


def encode_pb_eq(
    terms: Sequence[PBTerm],
    bound: int,
    new_var: NewVar,
) -> list[list[int]]:
    """Encode ``sum(w_i * lit_i) == bound`` as the two inequalities."""
    return encode_pb_leq(terms, bound, new_var) + encode_pb_geq(
        terms, bound, new_var
    )
