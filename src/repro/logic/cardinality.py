"""Cardinality constraint encodings to CNF.

Three encodings of "at most k of these literals are true":

- **pairwise** — the binomial encoding; no auxiliary variables, O(n²)
  clauses; only sensible for k=1 and small n.
- **sequential counter** (Sinz 2005) — O(n·k) clauses and auxiliaries;
  the workhorse default.
- **totalizer** (Bailleux & Boudet 2003) — a unary counting tree whose
  output literals can be re-bounded later, which the MaxSAT engine uses
  for incremental cost tightening.

All functions take a ``new_var`` callable that allocates fresh solver
variables, and return a list of clauses over DIMACS-style int literals.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

NewVar = Callable[[], int]


def at_most_one_pairwise(lits: Sequence[int]) -> list[list[int]]:
    """Binomial at-most-one: one clause per pair."""
    clauses = []
    for i in range(len(lits)):
        for j in range(i + 1, len(lits)):
            clauses.append([-lits[i], -lits[j]])
    return clauses


def at_most_k_pairwise(lits: Sequence[int], k: int) -> list[list[int]]:
    """Binomial at-most-k: one clause per (k+1)-subset. Exponential; small n only."""
    from itertools import combinations

    if k >= len(lits):
        return []
    if k < 0:
        return [[]]
    return [[-lit for lit in combo] for combo in combinations(lits, k + 1)]


def at_most_k_seqcounter(
    lits: Sequence[int], k: int, new_var: NewVar
) -> list[list[int]]:
    """Sinz sequential-counter encoding of at-most-k."""
    n = len(lits)
    if k >= n:
        return []
    if k < 0:
        return [[]]
    if k == 0:
        return [[-lit] for lit in lits]
    if n == 0:
        return []
    # registers[i][j] == "at least j+1 of lits[0..i] are true", i in 0..n-2.
    registers = [[new_var() for _ in range(k)] for _ in range(n - 1)]
    clauses: list[list[int]] = []
    clauses.append([-lits[0], registers[0][0]])
    for j in range(1, k):
        clauses.append([-registers[0][j]])
    for i in range(1, n - 1):
        clauses.append([-lits[i], registers[i][0]])
        clauses.append([-registers[i - 1][0], registers[i][0]])
        for j in range(1, k):
            clauses.append([-lits[i], -registers[i - 1][j - 1], registers[i][j]])
            clauses.append([-registers[i - 1][j], registers[i][j]])
        clauses.append([-lits[i], -registers[i - 1][k - 1]])
    clauses.append([-lits[n - 1], -registers[n - 2][k - 1]])
    return clauses


class Totalizer:
    """Unary counting tree over a set of input literals.

    After construction, ``outputs[j]`` is a literal meaning "at least j+1
    inputs are true" (outputs are totally ordered: output j+1 implies
    output j). Bounds can be asserted incrementally::

        tot = Totalizer(lits, new_var, collect)
        collect.extend(tot.at_most(5))   # now
        collect.extend(tot.at_most(3))   # tightened later

    which is how the MaxSAT engine performs cost descent without
    re-encoding.
    """

    def __init__(
        self,
        lits: Sequence[int],
        new_var: NewVar,
        clauses: list[list[int]] | None = None,
    ):
        self.clauses: list[list[int]] = clauses if clauses is not None else []
        self._new_var = new_var
        self.outputs = self._build(list(lits))

    def _build(self, lits: list[int]) -> list[int]:
        if len(lits) <= 1:
            return lits
        mid = len(lits) // 2
        left = self._build(lits[:mid])
        right = self._build(lits[mid:])
        return self._merge(left, right)

    def _merge(self, left: list[int], right: list[int]) -> list[int]:
        total = len(left) + len(right)
        out = [self._new_var() for _ in range(total)]
        # (left >= a) and (right >= b)  implies  (out >= a+b)
        for a in range(len(left) + 1):
            for b in range(len(right) + 1):
                sigma = a + b
                if sigma == 0:
                    continue
                clause = [out[sigma - 1]]
                if a > 0:
                    clause.insert(0, -left[a - 1])
                if b > 0:
                    clause.insert(0, -right[b - 1])
                self.clauses.append(clause)
        # Ordering: out >= j+1 implies out >= j (for model readability).
        for j in range(1, total):
            self.clauses.append([-out[j], out[j - 1]])
        return out

    def at_most(self, k: int) -> list[list[int]]:
        """Clauses asserting at most *k* inputs are true.

        Thanks to the ordering clauses between outputs, a single unit
        clause ``¬outputs[k]`` suffices: falsity cascades upward.
        """
        if k < 0:
            return [[]]
        if k >= len(self.outputs):
            return []
        return [[-self.outputs[k]]]


def at_most_k(
    lits: Sequence[int],
    k: int,
    new_var: NewVar,
    method: str = "auto",
) -> list[list[int]]:
    """Encode at-most-k with the requested *method* (auto/pairwise/seq/totalizer)."""
    lits = list(lits)
    if method == "auto":
        if k == 1 and len(lits) <= 8:
            method = "pairwise"
        else:
            method = "seq"
    if method == "pairwise":
        if k == 1:
            return at_most_one_pairwise(lits)
        return at_most_k_pairwise(lits, k)
    if method == "seq":
        return at_most_k_seqcounter(lits, k, new_var)
    if method == "totalizer":
        if k < 0:
            return [[]]
        tot = Totalizer(lits, new_var)
        return tot.clauses + tot.at_most(k)
    raise ValueError(f"unknown cardinality method {method!r}")


def at_least_k(
    lits: Sequence[int],
    k: int,
    new_var: NewVar,
    method: str = "auto",
) -> list[list[int]]:
    """Encode at-least-k as at-most-(n-k) over the negated literals."""
    lits = list(lits)
    if k <= 0:
        return []
    if k > len(lits):
        return [[]]
    if k == 1:
        return [list(lits)]
    return at_most_k([-lit for lit in lits], len(lits) - k, new_var, method)


def exactly_k(
    lits: Sequence[int],
    k: int,
    new_var: NewVar,
    method: str = "auto",
) -> list[list[int]]:
    """Encode exactly-k as the conjunction of at-most-k and at-least-k."""
    return at_most_k(lits, k, new_var, method) + at_least_k(
        lits, k, new_var, method
    )
