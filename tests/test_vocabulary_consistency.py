"""Consistency checks between the KB vocabulary and its consumers.

Two real regressions motivated these: a context flag used by a system but
missing from the prose-phrase table silently degraded extraction
benchmarks. These tests make the vocabulary contracts explicit.
"""

from __future__ import annotations

import pytest

from repro.extraction.documents import _CTX_PHRASES, _PROP_PHRASES
from repro.extraction.paper_extractor import _PHRASE_TO_VAR
from repro.kb.dsl import PROPERTY_SCOPES, namespace_of
from repro.kb.properties import PROPERTY_CATALOG
from repro.knowledge import default_knowledge_base
from repro.logic.simplify import free_vars


@pytest.fixture(scope="module")
def kb():
    return default_knowledge_base()


def _all_requirement_vars(kb) -> set[str]:
    out: set[str] = set()
    for system in kb.systems.values():
        out |= free_vars(system.requires)
        for feature in system.features:
            out |= free_vars(feature.requires)
    return out


class TestPhraseTables:
    def test_every_ctx_var_has_a_phrase(self, kb):
        used = {
            name.split("::", 1)[1]
            for name in _all_requirement_vars(kb)
            if namespace_of(name) == "ctx"
        }
        missing = used - set(_CTX_PHRASES)
        assert not missing, (
            f"context flags without prose phrases (extraction benchmarks "
            f"will silently degrade): {sorted(missing)}"
        )

    def test_every_required_prop_has_a_phrase(self, kb):
        used = {
            name.split("::")[2]
            for name in _all_requirement_vars(kb)
            if namespace_of(name) == "prop"
        }
        missing = used - set(_PROP_PHRASES)
        assert not missing, f"properties without prose phrases: {missing}"

    def test_phrase_inversion_is_injective(self):
        # Two phrases mapping to one var is fine; one phrase mapping to
        # two vars would make extraction ambiguous.
        assert len(_PHRASE_TO_VAR) == len(set(_PHRASE_TO_VAR))
        phrases = list(_PHRASE_TO_VAR)
        # No phrase may be a substring of another (matching is `in`).
        for i, a in enumerate(phrases):
            for b in phrases[i + 1:]:
                assert a not in b and b not in a, (a, b)


class TestPropertyVocabulary:
    def test_required_props_use_valid_scopes(self, kb):
        for name in _all_requirement_vars(kb):
            if namespace_of(name) == "prop":
                scope = name.split("::")[1]
                assert scope in PROPERTY_SCOPES, name

    def test_provided_props_are_consumed_or_cataloged(self, kb):
        """Every provided property is either required somewhere or part
        of the documented catalog — no write-only facts."""
        required = {
            name[len("prop::"):]
            for name in _all_requirement_vars(kb)
            if namespace_of(name) == "prop"
        }
        for formula in (r.formula for r in kb.rules.values()):
            required |= {
                name[len("prop::"):]
                for name in free_vars(formula)
                if namespace_of(name) == "prop"
            }
        for system in kb.systems.values():
            for provided in system.provides:
                prop_name = provided.split("::", 1)[1]
                assert provided in required or prop_name in PROPERTY_CATALOG, (
                    f"{system.name} provides {provided}, which nothing "
                    f"requires and the catalog does not document"
                )

    def test_objectives_solved_and_demanded_line_up(self, kb):
        """Case-study and template objectives must all be solvable."""
        from repro.knowledge.casestudy import (
            inference_case_study,
            more_workloads_request,
        )
        from repro.knowledge.workloads import ALL_TEMPLATES

        solvable = kb.objectives()
        requests = [inference_case_study(), more_workloads_request()]
        workloads = [w for r in requests for w in r.workloads]
        workloads += [factory() for factory in ALL_TEMPLATES.values()]
        for workload in workloads:
            for objective in workload.objectives:
                assert objective in solvable, (
                    f"{workload.name} needs {objective!r}, which no system "
                    f"solves"
                )
