"""Tests for the PFC forwarding simulation (the deadlock made concrete)."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology import build_leaf_spine
from repro.topology.graph import Topology
from repro.topology.routing import up_down_paths
from repro.topology.simulation import (
    Flow,
    PfcNetwork,
    cyclic_flow_set,
    simulate,
)


def _ring(n: int = 4) -> tuple[Topology, list[str]]:
    """A ring of tier-0 switches (the shape flooding turns create)."""
    topo = Topology(name=f"ring{n}")
    nodes = [topo.add_switch(f"s{i}", tier=0) for i in range(n)]
    for i in range(n):
        topo.add_link(nodes[i], nodes[(i + 1) % n])
    return topo, nodes


class TestFlowValidation:
    def test_short_path_rejected(self):
        with pytest.raises(TopologyError):
            Flow(name="f", path=["a"], packets=1)

    def test_zero_packets_rejected(self):
        with pytest.raises(TopologyError):
            Flow(name="f", path=["a", "b"], packets=0)

    def test_tiny_loop_rejected(self):
        with pytest.raises(TopologyError):
            cyclic_flow_set(["a", "b"])


class TestLinearForwarding:
    def test_single_flow_delivers(self):
        topo, nodes = _ring(4)
        result = simulate(
            topo, [Flow("f", path=nodes[:3], packets=5)], buffer_slots=2,
        )
        assert result.all_delivered
        assert not result.deadlocked

    def test_tick_count_scales_with_path(self):
        topo, nodes = _ring(4)
        short = simulate(topo, [Flow("s", nodes[:2], packets=1)])
        longer = simulate(topo, [Flow("l", nodes[:4], packets=1)])
        assert longer.ticks > short.ticks

    def test_opposing_flows_share_buffers(self):
        topo, nodes = _ring(4)
        flows = [
            Flow("fwd", nodes[:3], packets=6),
            Flow("rev", list(reversed(nodes[:3])), packets=6),
        ]
        result = simulate(topo, flows, buffer_slots=2)
        assert result.all_delivered


class TestDeadlock:
    def test_cyclic_flows_deadlock_under_pfc(self):
        topo, nodes = _ring(4)
        result = simulate(
            topo, cyclic_flow_set(nodes, packets=4), buffer_slots=2,
            pfc_enabled=True,
        )
        assert result.deadlocked
        assert not result.all_delivered
        assert result.stuck_buffers  # the frozen cycle is reported
        assert "DEADLOCK" in result.summary()

    def test_same_flows_without_pfc_drop_but_finish(self):
        """Lossy Ethernet: no pause frames, so no deadlock — packets are
        dropped instead (the other side of the PFC bargain)."""
        topo, nodes = _ring(4)
        result = simulate(
            topo, cyclic_flow_set(nodes, packets=4), buffer_slots=2,
            pfc_enabled=False,
        )
        assert not result.deadlocked

    def test_generous_buffers_avoid_this_deadlock(self):
        """With buffers deeper than the offered load the cycle drains."""
        topo, nodes = _ring(4)
        result = simulate(
            topo, cyclic_flow_set(nodes, packets=2), buffer_slots=64,
            pfc_enabled=True,
        )
        assert not result.deadlocked
        assert result.all_delivered

    def test_updown_traffic_never_deadlocks(self):
        """The up-down invariant, demonstrated dynamically: all-pairs
        valley-free traffic on a leaf-spine drains with tiny buffers."""
        topo = build_leaf_spine(3, 2, hosts_per_leaf=1)
        hosts = topo.hosts()
        flows = []
        for i, src in enumerate(hosts):
            for dst in hosts[i + 1:]:
                path = up_down_paths(topo, src, dst)[0]
                # Simulate between the switches (hosts are endpoints).
                flows.append(Flow(f"{src}->{dst}", path, packets=3))
        result = simulate(topo, flows, buffer_slots=1, pfc_enabled=True)
        assert not result.deadlocked
        assert result.all_delivered


class TestNetworkMechanics:
    def test_pause_blocks_sender(self):
        topo, nodes = _ring(4)
        net = PfcNetwork(topo, buffer_slots=1)
        net.inject(Flow("a", nodes[:3], packets=3))
        # First tick moves exactly one packet into the next buffer.
        assert net.tick() == 1
        # Second tick: head of ingress is paused (downstream full) but
        # the downstream packet advances.
        moved = net.tick()
        assert moved >= 1

    def test_invalid_buffer_slots(self):
        topo, _ = _ring(3)
        with pytest.raises(TopologyError):
            PfcNetwork(topo, buffer_slots=0)

    def test_counters(self):
        topo, nodes = _ring(4)
        net = PfcNetwork(topo, buffer_slots=4)
        net.inject(Flow("a", nodes[:2], packets=2))
        assert net.total == 2
        assert net.in_flight() == 2
        while net.in_flight():
            net.tick()
        assert net.delivered == 2
