"""Differential fuzzing of cardinality and pseudo-Boolean encodings.

Every encoder in ``repro.logic`` introduces auxiliary variables, so the
right correctness statement is *projected* equivalence: for each total
assignment to the base variables, the CNF must be satisfiable (with some
auxiliary assignment) exactly when the semantic constraint holds. The
test enumerates every base assignment and asks the CDCL solver to settle
the auxiliaries under assumptions — an exact oracle for the projection.

240+ seeded instances sweep the encoding methods (pairwise / sequential
counter / totalizer, and the generalized totalizer for PB), literal
polarities, and out-of-range bounds (k < 0, k > n, infeasible weights).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.logic.cardinality import at_least_k, at_most_k, exactly_k
from repro.logic.pseudo_boolean import (
    PBTerm,
    encode_pb_eq,
    encode_pb_geq,
    encode_pb_leq,
)
from repro.sat import Solver

_CARD_KINDS = ("at_most", "at_least", "exactly")
_CARD_METHODS = ("pairwise", "seq", "totalizer")
_CARD_CASES = [
    (seed, kind, method)
    for seed in range(14)
    for kind in _CARD_KINDS
    for method in _CARD_METHODS
]

_PB_OPS = ("leq", "geq", "eq")
_PB_CASES = [(seed, op) for seed in range(40) for op in _PB_OPS]


def _fresh_var_counter(start: int):
    state = {"next": start}

    def new_var() -> int:
        state["next"] += 1
        return state["next"] - 1

    return new_var, state


def _random_lits(rng: random.Random, num_vars: int) -> list[int]:
    variables = rng.sample(range(1, num_vars + 1), rng.randint(2, num_vars))
    return [v * rng.choice([1, -1]) for v in variables]


def _check_projection(num_vars, clauses, aux_top, semantic):
    """CNF (with aux vars) restricted to each base assignment must match
    the semantic evaluator exactly."""
    solver = Solver()
    solver.new_vars(aux_top)
    root_ok = True
    for clause in clauses:
        if not solver.add_clause(clause):
            root_ok = False
            break
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        assumptions = [v if bits[v - 1] else -v for v in range(1, num_vars + 1)]
        got = root_ok and solver.solve(assumptions)
        expected = semantic(assignment)
        assert got == expected, (
            f"projection mismatch on assignment={assignment}"
        )


@pytest.mark.parametrize("seed,kind,method", _CARD_CASES)
def test_cardinality_differential(seed, kind, method):
    rng = random.Random(f"card-{kind}-{method}-{seed}")
    num_vars = rng.randint(3, 5)
    lits = _random_lits(rng, num_vars)
    k = rng.randint(-1, len(lits) + 1)
    new_var, state = _fresh_var_counter(num_vars + 1)
    encode = {"at_most": at_most_k, "at_least": at_least_k,
              "exactly": exactly_k}[kind]
    clauses = encode(lits, k, new_var, method=method)

    def count(assignment):
        return sum(
            1 for lit in lits if assignment[abs(lit)] == (lit > 0)
        )

    semantic = {
        "at_most": lambda a: count(a) <= k,
        "at_least": lambda a: count(a) >= k,
        "exactly": lambda a: count(a) == k,
    }[kind]
    _check_projection(num_vars, clauses, state["next"] - 1, semantic)


@pytest.mark.parametrize("seed,op", _PB_CASES)
def test_pseudo_boolean_differential(seed, op):
    rng = random.Random(f"pb-{op}-{seed}")
    num_vars = rng.randint(3, 5)
    lits = _random_lits(rng, num_vars)
    terms = [PBTerm(rng.randint(1, 5), lit) for lit in lits]
    total = sum(t.weight for t in terms)
    bound = rng.randint(-2, total + 2)
    new_var, state = _fresh_var_counter(num_vars + 1)
    encode = {"leq": encode_pb_leq, "geq": encode_pb_geq,
              "eq": encode_pb_eq}[op]
    clauses = encode(terms, bound, new_var)

    def weight(assignment):
        return sum(
            t.weight for t in terms if assignment[abs(t.lit)] == (t.lit > 0)
        )

    semantic = {
        "leq": lambda a: weight(a) <= bound,
        "geq": lambda a: weight(a) >= bound,
        "eq": lambda a: weight(a) == bound,
    }[op]
    _check_projection(num_vars, clauses, state["next"] - 1, semantic)


def test_case_count_meets_floor():
    assert len(_CARD_CASES) + len(_PB_CASES) >= 200
