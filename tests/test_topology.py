"""Tests for topologies, routing, and PFC deadlock analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology import (
    BufferDependencyGraph,
    Topology,
    build_fat_tree,
    build_leaf_spine,
    find_cbd_cycles,
)
from repro.topology.pfc import add_flooding, audit_pfc, cbd_from_updown
from repro.topology.routing import (
    ecmp_paths,
    flooding_edges,
    is_valley_free,
    up_down_paths,
)


class TestTopologyModel:
    def test_basic_construction(self):
        topo = Topology()
        topo.add_switch("s0", tier=0)
        topo.add_host("h0")
        topo.add_link("s0", "h0")
        topo.validate()
        assert topo.switches() == ["s0"]
        assert topo.hosts() == ["h0"]

    def test_unknown_link_endpoint(self):
        topo = Topology()
        topo.add_switch("s0", tier=0)
        with pytest.raises(TopologyError):
            topo.add_link("s0", "ghost")

    def test_host_must_attach_to_tor(self):
        topo = Topology()
        topo.add_switch("agg", tier=1)
        topo.add_host("h")
        topo.add_link("agg", "h")
        with pytest.raises(TopologyError):
            topo.validate()

    def test_disconnected_rejected(self):
        topo = Topology()
        topo.add_switch("a", tier=0)
        topo.add_switch("b", tier=0)
        with pytest.raises(TopologyError):
            topo.validate()

    def test_negative_switch_tier_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_switch("s", tier=-1)

    def test_neighbor_queries(self):
        topo = build_leaf_spine(2, 2, hosts_per_leaf=1)
        assert set(topo.up_neighbors("leaf0")) == {"spine0", "spine1"}
        assert "leaf0_host0" in topo.down_neighbors("leaf0")


class TestFatTree:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_node_counts(self, k):
        topo = build_fat_tree(k)
        stats = topo.stats()
        assert stats["switches"] == (k // 2) ** 2 + k * k
        assert stats["hosts"] == k * (k // 2) ** 2

    def test_odd_arity_rejected(self):
        with pytest.raises(TopologyError):
            build_fat_tree(3)

    def test_hosts_per_edge_bound(self):
        with pytest.raises(TopologyError):
            build_fat_tree(4, hosts_per_edge=5)

    def test_leaf_spine_validation(self):
        with pytest.raises(TopologyError):
            build_leaf_spine(0, 1)


class TestRouting:
    def test_intra_pod_paths(self):
        topo = build_fat_tree(4, hosts_per_edge=1)
        paths = up_down_paths(topo, "pod0_edge0_host0", "pod0_edge1_host0")
        assert paths
        # Intra-pod: via aggregation (len 5) or core (len 7).
        assert {len(p) for p in paths} <= {5, 7}
        assert all(is_valley_free(topo, p) for p in paths)

    def test_inter_pod_path_count(self):
        topo = build_fat_tree(4, hosts_per_edge=1)
        paths = ecmp_paths(topo, "pod0_edge0_host0", "pod1_edge0_host0")
        # k=4: one path per core switch = 4 shortest paths.
        assert len(paths) == 4

    def test_same_host(self):
        topo = build_leaf_spine(2, 2, hosts_per_leaf=1)
        assert up_down_paths(topo, "leaf0_host0", "leaf0_host0") == [
            ["leaf0_host0"]
        ]

    def test_same_leaf_short_path(self):
        topo = build_leaf_spine(2, 2, hosts_per_leaf=2)
        paths = up_down_paths(topo, "leaf0_host0", "leaf0_host1")
        assert [len(p) for p in paths].count(3) == 1  # host-leaf-host

    def test_limit(self):
        topo = build_fat_tree(6, hosts_per_edge=1)
        paths = up_down_paths(
            topo, "pod0_edge0_host0", "pod1_edge0_host0", limit=2
        )
        assert len(paths) == 2

    def test_host_endpoint_required(self):
        topo = build_leaf_spine(2, 2)
        with pytest.raises(TopologyError):
            up_down_paths(topo, "leaf0", "leaf1")

    def test_valley_detection(self):
        topo = build_leaf_spine(2, 2, hosts_per_leaf=1)
        valley = ["leaf0_host0", "leaf0", "spine0", "leaf1", "spine1"]
        assert not is_valley_free(topo, valley)

    def test_flooding_edges_cover_all_turns(self):
        topo = build_leaf_spine(2, 2, hosts_per_leaf=1)
        turns = flooding_edges(topo)
        # leaf0 has 3 neighbors -> 3*2 = 6 turns; x2 leaves; spines have
        # 2 neighbors -> 2 turns each.
        assert len(turns) == 6 * 2 + 2 * 2


class TestPfc:
    def test_updown_cbd_acyclic(self):
        for topo in (build_fat_tree(4, hosts_per_edge=1),
                     build_leaf_spine(4, 2, hosts_per_leaf=1)):
            assert find_cbd_cycles(topo, flooding=False) == []

    def test_flooding_creates_cycles(self):
        for topo in (build_fat_tree(4, hosts_per_edge=1),
                     build_leaf_spine(2, 2, hosts_per_leaf=1)):
            assert find_cbd_cycles(topo, flooding=True)

    def test_single_spine_no_cycle_even_with_flooding(self):
        # One spine, one leaf: no alternative paths, flooding cannot loop.
        topo = build_leaf_spine(1, 1, hosts_per_leaf=2)
        assert find_cbd_cycles(topo, flooding=True) == []

    def test_audit_report_fields(self):
        topo = build_leaf_spine(2, 2, hosts_per_leaf=1)
        report = audit_pfc(topo, pfc_enabled=True, flooding=True)
        assert report.deadlock_possible
        assert "VIOLATION" in report.rule_verdict
        assert "DEADLOCK" in report.summary()
        clean = audit_pfc(topo, pfc_enabled=True, flooding=False)
        assert not clean.deadlock_possible
        assert "compliant" in clean.rule_verdict
        off = audit_pfc(topo, pfc_enabled=False, flooding=True)
        assert not off.deadlock_possible

    def test_manual_cbd(self):
        cbd = BufferDependencyGraph()
        cbd.add_path(["a", "b", "c"])
        cbd.add_path(["c", "b", "a"])
        assert cbd.num_buffers == 4
        assert not cbd.has_cycle()
        cbd.add_turn("c", "b", "c")  # nonsense turn closing a loop
        cbd.add_turn("b", "c", "b")
        assert cbd.has_cycle()

    def test_cycle_limit(self):
        topo = build_fat_tree(4, hosts_per_edge=1)
        cycles = find_cbd_cycles(topo, flooding=True, limit=3)
        assert len(cycles) == 3

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 4), st.integers(2, 3))
    def test_updown_always_acyclic_property(self, leaves, spines):
        topo = build_leaf_spine(leaves, spines, hosts_per_leaf=1)
        cbd = cbd_from_updown(topo)
        assert not cbd.has_cycle()

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 4), st.integers(2, 3))
    def test_flooding_breaks_multipath_fabrics(self, leaves, spines):
        topo = build_leaf_spine(leaves, spines, hosts_per_leaf=1)
        cbd = add_flooding(cbd_from_updown(topo), topo)
        assert cbd.has_cycle()
