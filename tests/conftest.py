"""Shared fixtures: small deterministic knowledge bases and helpers."""

from __future__ import annotations

import itertools
import random
import signal
import threading

import pytest

from repro.kb.hardware import Hardware, NICSpec, ServerSpec, SwitchSpec
from repro.kb.registry import KnowledgeBase
from repro.kb.resources import ResourceDemand
from repro.kb.system import System
from repro.kb.dsl import prop
from repro.logic.ast import TRUE


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than the bound "
        "(deadlock guard for the daemon concurrency tests; honored by "
        "pytest-timeout when installed, by a SIGALRM fallback otherwise)",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback for ``@pytest.mark.timeout`` without pytest-timeout.

    The concurrency/fault tests mark themselves with timeouts so a daemon
    deadlock fails fast instead of hanging the suite. CI installs
    pytest-timeout (which takes precedence via its plugin hook); local
    runs without it get this best-effort main-thread alarm instead.
    """
    marker = item.get_closest_marker("timeout")
    if (
        marker is None
        or item.config.pluginmanager.hasplugin("timeout")
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)
    seconds = int(marker.args[0] if marker.args
                  else marker.kwargs.get("seconds", 60))

    def _on_alarm(signum, frame):
        raise TimeoutError(f"test exceeded the {seconds}s timeout marker")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def brute_force_sat(num_vars: int, clauses: list[list[int]]) -> bool:
    """Reference satisfiability by enumeration (tiny instances only)."""
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def random_clauses(
    rng: random.Random, num_vars: int, num_clauses: int, max_len: int = 3
) -> list[list[int]]:
    """A random clause set over 1..num_vars."""
    clauses = []
    for _ in range(num_clauses):
        k = rng.randint(1, min(max_len, num_vars))
        variables = rng.sample(range(1, num_vars + 1), k)
        clauses.append([v * rng.choice([1, -1]) for v in variables])
    return clauses


@pytest.fixture
def tiny_kb() -> KnowledgeBase:
    """A minimal KB: two stacks, one monitor, matching hardware."""
    kb = KnowledgeBase()
    kb.add_system(System(
        name="StackA",
        category="network_stack",
        solves=["packet_processing"],
        requires=TRUE,
    ))
    kb.add_system(System(
        name="StackB",
        category="network_stack",
        solves=["packet_processing"],
        requires=prop("nic", "INTERRUPT_POLLING"),
    ))
    kb.add_system(System(
        name="Monitor",
        category="monitoring",
        solves=["detect_queue_length"],
        requires=prop("nic", "NIC_TIMESTAMPS"),
    ))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="PlainNIC", rate_gbps=25, power_w=10,
                     cost_usd=200, interrupt_polling=False),
        max_units=8,
    ))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="FancyNIC", rate_gbps=100, power_w=20,
                     cost_usd=900, timestamps=True, interrupt_polling=True),
        max_units=8,
    ))
    kb.add_hardware(Hardware(
        spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=400,
                        cost_usd=5000),
        max_units=8,
    ))
    kb.add_hardware(Hardware(
        spec=SwitchSpec(model="Tor", port_gbps=100, ports=32, memory_mb=16,
                        power_w=500, cost_usd=20000),
        max_units=4,
    ))
    return kb


@pytest.fixture
def resource_kb(tiny_kb: KnowledgeBase) -> KnowledgeBase:
    """tiny_kb plus a core-hungry system for resource tests."""
    tiny_kb.add_system(System(
        name="CoreHog",
        category="monitoring",
        solves=["flow_telemetry"],
        requires=TRUE,
        resources=[ResourceDemand("cpu_cores", fixed=100)],
    ))
    return tiny_kb
