"""Delta invalidation: fingerprint freshness, session rebasing, parity.

Three layers of the invalidation architecture:

1. **Fingerprint freshness fuzz** — every mutation path (direct
   mutators, wire deltas, ``evolution.KnowledgeBaseDelta``) must leave
   ``kb.fingerprint()`` equal to what a from-scratch rebuild of the same
   content computes. The historical bug class is a mutation that edits
   the dicts without journaling, leaving a stale cached fingerprint.
2. **Session rebase levels** — a KB delta disjoint from a compiled
   session's entity scope is adopted for free; an in-scope rule delta is
   patched on the live solver; anything else falls back to a full
   rebase. Whatever level fires, answers must match a fresh compile.
3. **Differential parity** — randomized mutation+query interleavings:
   the delta-absorbing session + footprint-invalidated cache must return
   byte-identical canonical result JSON to an always-recompile engine,
   over both the memory and sqlite fact-store backends.
"""

from __future__ import annotations

import copy
import random
from dataclasses import replace

import pytest

from repro.core.design import DesignRequest
from repro.core.executor import QueryExecutor
from repro.core.query import Query
from repro.core.session import ReasoningSession
from repro.kb.dsl import obj, prop
from repro.kb.evolution import KnowledgeBaseDelta
from repro.kb.hardware import Hardware, NICSpec, ServerSpec
from repro.kb.ordering import Ordering
from repro.kb.registry import KnowledgeBase
from repro.kb.rules import Rule
from repro.kb.store import SqliteFactStore
from repro.kb.system import System
from repro.kb.workload import Workload
from repro.logic.ast import TRUE, Not
from repro.serve.protocol import canonical_json, result_to_wire

pytestmark = pytest.mark.timeout(600)

SEED = 20260809


def _kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_system(System(name="StackA", category="network_stack",
                         solves=["packet_processing"], requires=TRUE))
    kb.add_system(System(name="StackB", category="network_stack",
                         solves=["packet_processing"],
                         requires=prop("nic", "INTERRUPT_POLLING")))
    kb.add_system(System(name="Probe", category="monitoring",
                         solves=["detect_queue_length"],
                         requires=prop("nic", "NIC_TIMESTAMPS")))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="NIC", rate_gbps=25, power_w=10, cost_usd=200,
                     timestamps=True, interrupt_polling=True),
        max_units=4,
    ))
    kb.add_hardware(Hardware(
        spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=400,
                        cost_usd=5000),
        max_units=4,
    ))
    kb.add_ordering(Ordering(dimension="speed", better="StackA",
                             worse="StackB", source="paper"))
    return kb


def _request(**kwargs) -> DesignRequest:
    defaults = dict(workloads=[
        Workload(name="app", objectives=["packet_processing"]),
    ])
    defaults.update(kwargs)
    return DesignRequest(**defaults)


def _fresh_fingerprint(kb: KnowledgeBase) -> str:
    """What the same content hashes to when rebuilt from scratch."""
    return KnowledgeBase.from_dict(kb.to_dict()).fingerprint()


# ---------------------------------------------------------------------------
# 1. Fingerprint freshness
# ---------------------------------------------------------------------------


class TestFingerprintFreshness:
    def test_mutation_sequence_fuzz(self):
        """Random mutator interleavings never leave a stale fingerprint."""
        rng = random.Random(SEED)
        kb = _kb()
        counter = 0

        def fresh_name(prefix: str) -> str:
            nonlocal counter
            counter += 1
            return f"{prefix}{counter}"

        def add_system():
            kb.add_system(System(
                name=fresh_name("Sys"), category="network_stack",
                solves=["packet_processing"], requires=TRUE,
            ))

        def upsert_system():
            name = rng.choice(sorted(kb.systems))
            kb.upsert_system(replace(
                kb.systems[name], description=fresh_name("d"),
            ))

        def remove_system():
            extras = [n for n in kb.systems if n.startswith("Sys")]
            if extras:
                kb.remove_system(rng.choice(sorted(extras)))

        def add_hardware():
            kb.add_hardware(Hardware(spec=NICSpec(
                model=fresh_name("NIC"), rate_gbps=10 * counter,
                power_w=5, cost_usd=100,
            ), max_units=2))

        def upsert_hardware():
            model = rng.choice(sorted(kb.hardware))
            hardware = kb.hardware[model]
            kb.upsert_hardware(replace(
                hardware,
                spec=replace(hardware.spec,
                             cost_usd=hardware.spec.cost_usd + 1),
            ))

        def add_rule():
            kb.add_rule(Rule(name=fresh_name("rule"), formula=TRUE))

        def remove_rule():
            if kb.rules:
                kb.remove_rule(rng.choice(sorted(kb.rules)))

        def add_ordering():
            names = sorted(kb.systems)
            if len(names) >= 2:
                better, worse = rng.sample(names, 2)
                kb.add_ordering(Ordering(
                    dimension=fresh_name("dim"), better=better, worse=worse,
                    source="fuzz",
                ))

        def set_orderings():
            kb.set_orderings("speed", [Ordering(
                dimension="speed", better="StackA", worse="StackB",
                source=fresh_name("src"),
            )])

        def wire_delta():
            kb.apply_entity_delta([{
                "op": "upsert", "entity": "rule",
                "name": fresh_name("rule"),
                "payload": Rule(name="x", formula=TRUE).to_dict()
                | {"name": fresh_name("rule")},
            }])

        mutations = [add_system, upsert_system, remove_system, add_hardware,
                     upsert_hardware, add_rule, remove_rule, add_ordering,
                     set_orderings, wire_delta]
        for step in range(60):
            rng.choice(mutations)()
            assert kb.fingerprint() == _fresh_fingerprint(kb), (
                f"stale fingerprint after step {step}"
            )

    def test_evolution_delta_keeps_fingerprint_fresh(self):
        """Regression: KnowledgeBaseDelta.apply must journal every edit."""
        kb = _kb()
        delta = KnowledgeBaseDelta(
            author="fuzz",
            add_systems=[System(name="New", category="network_stack",
                                solves=["packet_processing"], requires=TRUE)],
            replace_systems=[replace(kb.systems["StackA"],
                                     description="updated")],
            remove_systems=["StackB"],
            add_rules=[Rule(name="delta_rule", formula=TRUE)],
            add_hardware=[Hardware(spec=NICSpec(
                model="NIC2", rate_gbps=100, power_w=20, cost_usd=900,
            ), max_units=2)],
        )
        evolved, report = delta.apply(kb)
        assert report.removed_systems == ["StackB"]
        assert evolved.fingerprint() == _fresh_fingerprint(evolved)
        assert evolved.fingerprint() != kb.fingerprint()
        # The original is untouched.
        assert kb.fingerprint() == _fresh_fingerprint(kb)

    def test_merge_keeps_fingerprint_fresh(self):
        kb = _kb()
        other = KnowledgeBase()
        other.add_system(System(name="Extra", category="monitoring",
                                solves=["detect_queue_length"],
                                requires=TRUE))
        merged = kb.merge(other)
        assert merged.fingerprint() == _fresh_fingerprint(merged)

    def test_changed_entities_tracks_the_journal(self):
        kb = _kb()
        v0 = kb.version
        kb.add_rule(Rule(name="r", formula=TRUE))
        kb.upsert_hardware(kb.hardware["NIC"])
        # Upserting an existing model touches the entity but not the
        # catalog membership key; the new rule touches both.
        assert kb.changed_entities(v0) == frozenset({
            ("rule", "r"), ("rules@", ""), ("hardware", "NIC"),
        })
        assert kb.changed_entities(kb.version) == frozenset()

    def test_deepcopy_preserves_journal_continuity(self):
        kb = _kb()
        v0 = kb.version
        evolved = copy.deepcopy(kb)
        evolved.add_rule(Rule(name="r", formula=TRUE))
        changed = evolved.changed_entities(v0)
        assert changed is not None and ("rule", "r") in changed
        assert evolved.store is None  # stores never ride along a copy


# ---------------------------------------------------------------------------
# 2. Session rebase levels
# ---------------------------------------------------------------------------


class TestSessionRebaseLevels:
    def test_disjoint_delta_is_adopted_for_free(self):
        kb = _kb()
        request = _request(candidate_systems=["StackA"],
                           inventory={"NIC": 2, "Box": 2})
        session = ReasoningSession(kb)
        session.view(request)
        # New hardware the pinned request can never touch.
        kb.add_hardware(Hardware(spec=NICSpec(
            model="Elsewhere", rate_gbps=400, power_w=30, cost_usd=2000,
        ), max_units=2))
        session.view(request)
        assert session.stats.compiles == 1
        assert session.stats.rebases_avoided == 1

    def test_new_restrictive_rule_changes_the_answer(self):
        """A rule added after compile must be enforced, whatever the
        absorb level — the scope only knew the rules that existed at
        compile time."""
        kb = _kb()
        request = _request()
        session = ReasoningSession(kb)
        assert session.check(request).feasible
        kb.add_rule(Rule(name="outlaw",
                         formula=Not(obj("packet_processing"))))
        assert not session.check(request).feasible
        kb.remove_rule("outlaw")
        assert session.check(request).feasible
        # Removal of a compiled-in rule is patchable in place.
        assert session.stats.rebases_patched >= 1

    def test_rule_patch_reuses_the_compiled_base(self):
        kb = _kb()
        request = _request()
        session = ReasoningSession(kb)
        session.view(request)
        kb.add_rule(Rule(name="benign", formula=TRUE))
        session.view(request)
        assert session.stats.compiles == 1
        assert session.stats.rebases == 0
        assert session.stats.rebases_patched == 1

    def test_system_change_forces_full_rebase(self):
        kb = _kb()
        request = _request()
        session = ReasoningSession(kb)
        session.view(request)
        kb.add_system(System(name="Late", category="network_stack",
                             solves=["packet_processing"], requires=TRUE))
        session.view(request)
        assert session.stats.rebases == 1


# ---------------------------------------------------------------------------
# 3. Differential parity: delta absorption vs always-recompile
# ---------------------------------------------------------------------------


def _mutation_script(rng: random.Random):
    """A deterministic list of KB mutations as (label, fn(kb)) pairs."""
    steps = []
    for i in range(6):
        kind = rng.choice(["rule_add", "rule_remove", "hardware", "ordering",
                           "system"])
        if kind == "rule_add":
            name = f"fuzz_rule_{i}"
            steps.append((f"+rule {name}", lambda kb, n=name: kb.add_rule(
                Rule(name=n, formula=TRUE))))
        elif kind == "rule_remove":
            name = f"fuzz_rule_{i}"
            def _toggle(kb, n=name):
                if n in kb.rules:
                    kb.remove_rule(n)
                else:
                    kb.add_rule(Rule(name=n, formula=TRUE))
            steps.append((f"~rule {name}", _toggle))
        elif kind == "hardware":
            model = f"HW{i}"
            steps.append((f"+hw {model}", lambda kb, m=model: kb.add_hardware(
                Hardware(spec=NICSpec(model=m, rate_gbps=10 + i,
                                      power_w=5, cost_usd=100 + i),
                         max_units=2))))
        elif kind == "ordering":
            steps.append(("~ordering speed", lambda kb: kb.set_orderings(
                "speed", [Ordering(dimension="speed", better="StackB",
                                   worse="StackA", source=f"s{i}")])))
        else:
            name = f"Sys{i}"
            steps.append((f"+system {name}", lambda kb, n=name: kb.add_system(
                System(name=n, category="monitoring",
                       solves=["detect_queue_length"], requires=TRUE))))
    return steps


def _query_mix(rng: random.Random) -> list[Query]:
    requests = [
        _request(),
        _request(required_systems=["StackA"]),
        _request(forbidden_systems=["StackB"]),
        _request(budgets={"capex_usd": 100}),
        _request(workloads=[
            Workload(name="app", objectives=["packet_processing"]),
            Workload(name="probe", objectives=["detect_queue_length"]),
        ]),
    ]
    queries = []
    for request in requests:
        queries.append(Query("check", request))
        queries.append(Query("diagnose", request))
    queries.append(Query("enumerate", _request(), limit=4))
    queries.append(Query("equivalence", _request(), class_limit=2,
                         completions_limit=4))
    rng.shuffle(queries)
    return queries


def _canonical(verb: str, result) -> bytes:
    return canonical_json(result_to_wire(verb, result))


def _semantic_key(verb: str, result):
    """The trajectory-independent content of a verb's answer.

    A delta-absorbing session arrives at each query *warm* (learned
    clauses, phases), so among equally-valid answers it may pick a
    different model than a cold recompile — the documented session
    contract. What must agree regardless: feasibility verdicts, whether
    a conflict exists, the *set* of enumerable deployments, and the
    equivalence-class partition.
    """
    wire = result_to_wire(verb, result)
    if verb in ("check", "synthesize"):
        return ("feasible", wire["feasible"])
    if verb == "diagnose":
        return ("conflict", wire is not None)
    if verb == "enumerate":
        return ("deployments", tuple(sorted(
            tuple(sorted(systems)) for systems in wire
        )))
    if verb == "equivalence":
        return ("classes", tuple(sorted(
            tuple(sorted(cls["systems"])) for cls in wire
        )))
    return ("raw", canonical_json(wire))


def _build_plan():
    rng = random.Random(SEED)
    script = _mutation_script(rng)
    queries = _query_mix(rng)
    plan: list[tuple] = [("query", q) for q in queries]
    for step in script:
        plan.insert(rng.randrange(len(plan) + 1), ("mutate", step))
    return plan


def _run_plan(kb: KnowledgeBase, *, delta_mode: bool) -> list[bytes]:
    """Execute the interleaving; returns canonical result bytes per query.

    *delta_mode* keeps one incremental executor alive across mutations
    (sessions absorb deltas, the cache invalidates by footprint). The
    always-recompile reference discards the executor after every
    mutation — the pre-delta invalidation behavior.
    """
    executor = QueryExecutor(kb, incremental=True, preprocess=True)
    out = []
    for action, payload in _build_plan():
        if action == "mutate":
            payload[1](kb)
            if not delta_mode:
                executor = QueryExecutor(
                    kb, incremental=True, preprocess=True
                )
            continue
        out.append(_canonical(payload.verb, executor.execute(payload)))
    return out


class TestDeltaParity:
    def test_backends_are_byte_invisible(self, tmp_path):
        """The same interleaving is byte-identical on memory vs sqlite.

        The fact-store backend sits below the registry; nothing about
        solver trajectories, fingerprints, or absorb decisions may
        depend on it.
        """
        memory_kb = _kb()
        sqlite_kb = _kb()
        sqlite_kb.attach_store(
            SqliteFactStore(str(tmp_path / "kb.sqlite")), snapshot=True
        )
        memory_results = _run_plan(memory_kb, delta_mode=True)
        sqlite_results = _run_plan(sqlite_kb, delta_mode=True)
        assert memory_results == sqlite_results
        # And the whole interleaving replays from the fact log.
        store = sqlite_kb.detach_store()
        assert KnowledgeBase.from_store(store).fingerprint() == (
            sqlite_kb.fingerprint()
        )
        assert sqlite_kb.fingerprint() == memory_kb.fingerprint()

    def test_delta_mode_semantically_matches_always_recompile(self):
        """Interleaved mutations+queries: absorb == recompile answers."""
        delta_kb = _kb()
        reference_kb = _kb()
        delta_executor = QueryExecutor(
            delta_kb, incremental=True, preprocess=True
        )
        reference_executor = QueryExecutor(
            reference_kb, incremental=True, preprocess=True
        )
        mismatches = []
        for index, (action, payload) in enumerate(_build_plan()):
            if action == "mutate":
                payload[1](delta_kb)
                payload[1](reference_kb)
                # Reference: the old invalidation story — any mutation
                # throws away all warm state.
                reference_executor = QueryExecutor(
                    reference_kb, incremental=True, preprocess=True
                )
                continue
            got = _semantic_key(payload.verb, delta_executor.execute(payload))
            want = _semantic_key(
                payload.verb, reference_executor.execute(payload)
            )
            if got != want:
                mismatches.append((index, payload.verb, got, want))
        assert mismatches == []
        # The delta side must actually have absorbed rather than
        # recompiled its way through the script.
        stats = delta_executor.session().stats
        assert stats.rebases_avoided + stats.rebases_patched > 0


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
class TestCacheFootprints:
    def test_cache_survives_disjoint_deltas_and_never_lies(
        self, backend, tmp_path
    ):
        kb = _kb()
        if backend == "sqlite":
            kb.attach_store(
                SqliteFactStore(str(tmp_path / "kb.sqlite")), snapshot=True
            )
        from repro.par.cache import QueryCache

        executor = QueryExecutor(
            kb, incremental=True, preprocess=True, cache=QueryCache(32)
        )
        pinned = Query("check", _request(
            candidate_systems=["StackA"], inventory={"NIC": 2, "Box": 2},
        ))
        first = executor.execute(pinned)
        hits_before = executor.cache.stats()["hits"]
        # Disjoint delta: new hardware out of the pinned footprint.
        kb.add_hardware(Hardware(spec=NICSpec(
            model="Offside", rate_gbps=400, power_w=30, cost_usd=2000,
        ), max_units=2))
        second = executor.execute(pinned)
        assert executor.cache.stats()["hits"] == hits_before + 1
        assert _canonical("check", first) == _canonical("check", second)
        # Overlapping delta: the pinned NIC itself changes — the cached
        # entry must not survive.
        nic = kb.hardware["NIC"]
        kb.upsert_hardware(replace(
            nic, spec=replace(nic.spec, interrupt_polling=False),
        ))
        third = executor.execute(pinned)
        assert executor.cache.stats()["hits"] == hits_before + 1
        reference = QueryExecutor(
            KnowledgeBase.from_dict(kb.to_dict()),
            incremental=True, preprocess=True,
        ).execute(pinned)
        assert _canonical("check", third) == _canonical("check", reference)
