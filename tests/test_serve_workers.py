"""The multi-process solver execution backend (`repro.serve.workers`).

Four obligations, mirroring the daemon's threaded-mode guarantees:

1. **Byte parity.** Every verb — unary and streamed — answered through
   the worker pool must produce byte-identical wire payloads to the
   threaded daemon (which is itself pinned byte-identical to direct
   executor runs by test_serve).
2. **Affinity.** Repeat shapes route to the same worker slot; deep
   queues spill to the least-loaded worker; disabled slots are skipped.
3. **Loss is structured.** SIGKILLing a worker mid-solve yields a
   ``worker_lost`` error payload (never a hang), the slot respawns, and
   the daemon keeps serving.
4. **Aggregation.** ``/stats`` reports worker pools summed and
   solve-latency histograms merged across processes.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import pytest

from repro.core.design import DesignRequest
from repro.core.query import Query
from repro.kb.hardware import Hardware, NICSpec, ServerSpec
from repro.kb.registry import KnowledgeBase
from repro.kb.rules import Rule
from repro.kb.system import System
from repro.kb.workload import Workload
from repro.kb.dsl import obj
from repro.logic.ast import TRUE, Not
from repro.serve import DaemonConfig, InprocDaemon, ReasoningDaemon
from repro.serve.client import make_envelope
from repro.serve.protocol import WireError
from repro.serve.workers import StreamRelay, SupervisorConfig, WorkerSupervisor

pytestmark = pytest.mark.timeout(300)


def _kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_system(System(
        name="StackA", category="network_stack",
        solves=["packet_processing"], requires=TRUE,
    ))
    kb.add_system(System(
        name="StackB", category="network_stack",
        solves=["packet_processing"], requires=TRUE,
    ))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="NIC", rate_gbps=25, power_w=10, cost_usd=200),
        max_units=4,
    ))
    kb.add_hardware(Hardware(
        spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=400,
                        cost_usd=5000),
        max_units=4,
    ))
    return kb


def _request(shape: str = "app") -> DesignRequest:
    return DesignRequest(workloads=[
        Workload(name=shape, objectives=["packet_processing"]),
    ])


def _infeasible_request() -> DesignRequest:
    return DesignRequest(
        workloads=[Workload(name="app", objectives=["packet_processing"])],
        required_systems=["StackA"],
        forbidden_systems=["StackA"],
    )


def _parity_envelopes() -> list[dict]:
    feasible, infeasible = _request(), _infeasible_request()
    return [
        make_envelope("check", feasible, request_id="q-check"),
        make_envelope("check", infeasible, request_id="q-check-unsat"),
        make_envelope("synthesize", feasible, request_id="q-synth"),
        make_envelope("explain", feasible, request_id="q-explain"),
        make_envelope("diagnose", infeasible, request_id="q-diag"),
        make_envelope("diagnose", infeasible, request_id="q-diag-s",
                      stream=True),
        make_envelope("diagnose", feasible, request_id="q-diag-ok-s",
                      stream=True),
        make_envelope("enumerate", feasible, request_id="q-enum",
                      options={"limit": 3}),
        make_envelope("enumerate", feasible, request_id="q-enum-s",
                      options={"limit": 3}, stream=True),
        make_envelope("equivalence", feasible, request_id="q-equiv",
                      options={"completions_limit": 4}),
        make_envelope("equivalence", feasible, request_id="q-equiv-s",
                      options={"completions_limit": 4}, stream=True),
        # Error paths must serialize identically too.
        {"id": "q-bad-verb", "verb": "nope", "request": {}},
        {"id": "q-bad-kb", "verb": "check", "kb": "missing",
         "request": feasible.to_dict()},
        {"id": "q-bad-req", "verb": "check", "request": {"workloads": 7}},
        {"id": "q-bad-stream", "verb": "check", "stream": True,
         "request": feasible.to_dict()},
    ]


class TestProcessParity:
    def test_byte_parity_with_threaded_daemon_across_all_verbs(self):
        """Workers answer every verb byte-identically to threaded mode."""
        envelopes = _parity_envelopes()
        with InprocDaemon(
            ReasoningDaemon(_kb(), DaemonConfig(port=None, threads=2))
        ) as threaded:
            expected = [threaded.query_bytes(e) for e in envelopes]
        with InprocDaemon(
            ReasoningDaemon(_kb(), DaemonConfig(port=None, workers=2))
        ) as pooled:
            actual = [pooled.query_bytes(e) for e in envelopes]
        for envelope, want, got in zip(envelopes, expected, actual):
            assert got == want, (
                f"divergence on {envelope.get('id')}:\n"
                f"  threaded: {want!r}\n  process:  {got!r}"
            )

    def test_parent_kb_mutation_is_reshipped_to_workers(self):
        """Workers answer against the *current* KB, not their boot copy."""
        kb = _kb()
        daemon = ReasoningDaemon(kb, DaemonConfig(port=None, workers=2))
        with InprocDaemon(daemon) as harness:
            first = harness.query(make_envelope("check", _request()))
            assert first["ok"] and first["result"]["feasible"] is True
            # Outlaw the objective: the previously feasible request must
            # now come back infeasible through the same worker pool.
            kb.add_rule(Rule(name="outlawed",
                             formula=Not(obj("packet_processing"))))
            second = harness.query(make_envelope("check", _request()))
            assert second["ok"] and second["result"]["feasible"] is False
            # The journaled mutation travels as an entity delta, not a
            # full KB re-serialization.
            assert daemon.metrics.counter("workers.kb_delta_shipped") >= 1
            assert daemon.metrics.counter("workers.kb_shipped") == 0


class TestRouting:
    def _supervisor(self, workers: int, spill_depth: int = 2):
        kb = _kb()
        supervisor = WorkerSupervisor(
            {"default": kb},
            SupervisorConfig(workers=workers, spill_depth=spill_depth),
        )
        for handle in supervisor.workers:
            handle.process = object()  # live marker; no real process
        return supervisor, kb

    def test_same_shape_always_routes_to_the_same_slot(self):
        supervisor, kb = self._supervisor(4)
        query = Query("check", _request())
        slots = {
            supervisor.route("default", kb, query).slot for _ in range(8)
        }
        assert len(slots) == 1

    def test_distinct_shapes_spread_across_slots(self):
        supervisor, kb = self._supervisor(4)
        slots = {
            supervisor.route(
                "default", kb, Query("check", _request(f"shape{i}"))
            ).slot
            for i in range(32)
        }
        assert len(slots) >= 2

    def test_deep_queue_spills_to_least_loaded_worker(self):
        supervisor, kb = self._supervisor(2, spill_depth=0)
        query = Query("check", _request())
        preferred = supervisor.route("default", kb, query)
        preferred.pending = {i: object() for i in range(3)}
        other = next(
            h for h in supervisor.workers if h is not preferred
        )
        assert supervisor.route("default", kb, query) is other
        assert supervisor.metrics.counter("route.spill") >= 1

    def test_disabled_slot_falls_back_to_a_live_worker(self):
        supervisor, kb = self._supervisor(2)
        query = Query("check", _request())
        preferred = supervisor.route("default", kb, query)
        preferred.process = None
        routed = supervisor.route("default", kb, query)
        assert routed is not preferred and routed.process is not None

    def test_all_slots_disabled_is_a_structured_error(self):
        supervisor, kb = self._supervisor(2)
        for handle in supervisor.workers:
            handle.process = None
        with pytest.raises(WireError) as excinfo:
            supervisor.route("default", kb, Query("check", _request()))
        assert excinfo.value.code == "internal"


class TestStreamRelay:
    def test_error_after_start_emits_terminal_error_frame(self):
        """A worker dying mid-relay terminates the stream structurally:
        the final frame carries ``done: false`` plus the error, so
        read-until-done clients never hang."""

        async def run():
            relay = StreamRelay("rid1", "enumerate")
            relay._push("item", ["StackA"])
            relay._push("error", ("worker_lost", "boom"))
            return [json.loads(f) async for f in relay.aiter_frames()]

        frames = asyncio.run(run())
        assert frames[0] == {"id": "rid1", "ok": True, "verb": "enumerate",
                             "stream": True}
        assert frames[1] == {"item": ["StackA"], "seq": 0}
        assert frames[2] == {"done": False, "error": {
            "code": "worker_lost", "message": "boom"}}

    def test_clean_stream_ends_with_done_frame(self):
        async def run():
            relay = StreamRelay("rid2", "enumerate")
            relay._push("item", ["StackA"])
            relay._push("item", ["StackB"])
            relay._push("end", 2)
            return [json.loads(f) async for f in relay.aiter_frames()]

        frames = asyncio.run(run())
        assert [f.get("seq") for f in frames[1:-1]] == [0, 1]
        assert frames[-1] == {"done": True, "count": 2}


class TestWorkerLoss:
    def test_sigkill_mid_solve_yields_worker_lost_then_respawn(self):
        """The acceptance scenario: kill a worker while it solves.

        The in-flight request must fail with a structured ``worker_lost``
        error (no hang), the slot must respawn with a fresh pid, and the
        daemon must keep answering with zero leaked admission slots.
        """
        from repro.knowledge import default_knowledge_base
        from repro.knowledge.casestudy import more_workloads_request

        daemon = ReasoningDaemon(
            default_knowledge_base(),
            DaemonConfig(port=None, workers=2, heartbeat_interval=0.2),
        )
        harness = InprocDaemon(daemon).start()
        try:
            request = more_workloads_request()
            victim_future = harness.submit(daemon.handle(
                make_envelope("check", request, request_id="victim")
            ))
            supervisor = daemon._supervisor
            deadline = time.monotonic() + 60
            victim = None
            while time.monotonic() < deadline and victim is None:
                victim = next(
                    (h for h in supervisor.workers if h.load and h.pid),
                    None,
                )
                time.sleep(0.01)
            assert victim is not None, "request never reached a worker"
            old_pid = victim.pid
            os.kill(old_pid, signal.SIGKILL)

            reply = victim_future.result(timeout=60)
            assert reply.payload["ok"] is False
            assert reply.payload["error"]["code"] == "worker_lost"
            assert "Traceback" not in reply.payload["error"]["message"]

            # The slot respawns with a fresh process.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if victim.alive and victim.pid != old_pid:
                    break
                time.sleep(0.02)
            assert victim.alive and victim.pid != old_pid
            assert victim.restarts >= 1
            assert supervisor.lost_total == 1

            # No leaked admission slot, and the daemon still answers.
            assert daemon.admission.inflight == 0
            after = harness.query(
                make_envelope("check", request, request_id="after"),
            )
            assert after["ok"] is True
        finally:
            harness.stop()


class TestStatsAggregation:
    def test_stats_sum_pools_and_merge_histograms_across_workers(self):
        daemon = ReasoningDaemon(
            _kb(), DaemonConfig(port=None, workers=2)
        )
        with InprocDaemon(daemon) as harness:
            for i in range(3):
                payload = harness.query(
                    make_envelope("check", _request(), request_id=f"q{i}")
                )
                assert payload["ok"] is True
            stats = harness.submit(daemon._stats_reply()).result(60).payload
            assert stats["daemon"]["mode"] == "process"
            assert stats["daemon"]["workers"] == 2
            workers = stats["workers"]
            assert len(workers) == 2
            assert all(w["alive"] for w in workers)
            assert len({w["pid"] for w in workers}) == 2
            pool = stats["pool"]
            assert pool["hits"] + pool["misses"] == 3
            assert pool["max_sessions"] == 2 * daemon.config.pool_size
            hist = stats["solve_latency"]["solve_latency.check"]
            assert hist["count"] == 3
            assert hist["total"] > 0

    def test_stop_terminates_every_worker(self):
        daemon = ReasoningDaemon(
            _kb(), DaemonConfig(port=None, workers=2)
        )
        harness = InprocDaemon(daemon).start()
        try:
            assert harness.query(make_envelope("check", _request()))["ok"]
            processes = [
                h.process for h in daemon._supervisor.workers if h.process
            ]
            assert len(processes) == 2
        finally:
            harness.stop()
        assert all(not p.is_alive() for p in processes)
