"""Unit tests for the formula AST, simplifier, and NNF."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ast import (
    FALSE,
    TRUE,
    And,
    AtLeast,
    AtMost,
    Exactly,
    Iff,
    Implies,
    Not,
    Or,
    Var,
    Xor,
)
from repro.logic.simplify import evaluate, free_vars, simplify, to_nnf


class TestConstruction:
    def test_var_equality_by_name(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert hash(Var("x")) == hash(Var("x"))

    def test_empty_var_name_rejected(self):
        with pytest.raises(ValueError):
            Var("")

    def test_operators_build_nodes(self):
        x, y = Var("x"), Var("y")
        assert isinstance(x & y, And)
        assert isinstance(x | y, Or)
        assert isinstance(~x, Not)
        assert isinstance(x >> y, Implies)
        assert isinstance(x ^ y, Xor)
        assert isinstance(x.iff(y), Iff)

    def test_nary_flattening(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        nested = And(And(x, y), z)
        assert nested.children == (x, y, z)
        nested_or = Or(x, Or(y, z))
        assert nested_or.children == (x, y, z)

    def test_and_does_not_flatten_or(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        mixed = And(Or(x, y), z)
        assert len(mixed.children) == 2

    def test_iterable_misuse_rejected(self):
        with pytest.raises(TypeError):
            And([Var("x"), Var("y")])  # must be unpacked

    def test_negative_cardinality_bound_rejected(self):
        with pytest.raises(ValueError):
            AtMost(-1, [Var("x")])

    def test_structural_equality(self):
        a = Implies(Var("x"), Var("y"))
        b = Implies(Var("x"), Var("y"))
        assert a == b and hash(a) == hash(b)


class TestFreeVars:
    def test_collects_all(self):
        f = Implies(Var("a") & Var("b"), Or(Not(Var("c")), Var("a")))
        assert free_vars(f) == {"a", "b", "c"}

    def test_cardinality_children(self):
        f = Exactly(1, [Var("a"), Not(Var("b"))])
        assert free_vars(f) == {"a", "b"}

    def test_constants_have_none(self):
        assert free_vars(TRUE) == set()


class TestEvaluate:
    def test_truth_tables(self):
        x, y = Var("x"), Var("y")
        cases = {
            (False, False): dict(a=False, o=False, i=True, iff=True, x_=False),
            (False, True): dict(a=False, o=True, i=True, iff=False, x_=True),
            (True, False): dict(a=False, o=True, i=False, iff=False, x_=True),
            (True, True): dict(a=True, o=True, i=True, iff=True, x_=False),
        }
        for (vx, vy), want in cases.items():
            env = {"x": vx, "y": vy}
            assert evaluate(x & y, env) == want["a"]
            assert evaluate(x | y, env) == want["o"]
            assert evaluate(x >> y, env) == want["i"]
            assert evaluate(x.iff(y), env) == want["iff"]
            assert evaluate(x ^ y, env) == want["x_"]

    def test_cardinality_semantics(self):
        vs = [Var(c) for c in "abc"]
        env = {"a": True, "b": True, "c": False}
        assert evaluate(AtMost(2, vs), env)
        assert not evaluate(AtMost(1, vs), env)
        assert evaluate(AtLeast(2, vs), env)
        assert not evaluate(AtLeast(3, vs), env)
        assert evaluate(Exactly(2, vs), env)
        assert not evaluate(Exactly(1, vs), env)


def _random_formula(draw, names, depth):
    if depth == 0:
        return draw(st.sampled_from([Var(n) for n in names] + [TRUE, FALSE]))
    kind = draw(st.sampled_from(
        ["var", "not", "and", "or", "implies", "iff", "xor", "am", "al", "ex"]
    ))
    if kind == "var":
        return Var(draw(st.sampled_from(names)))
    if kind == "not":
        return Not(_random_formula(draw, names, depth - 1))
    if kind in ("and", "or"):
        k = draw(st.integers(2, 3))
        kids = [_random_formula(draw, names, depth - 1) for _ in range(k)]
        return And(*kids) if kind == "and" else Or(*kids)
    if kind == "implies":
        return Implies(
            _random_formula(draw, names, depth - 1),
            _random_formula(draw, names, depth - 1),
        )
    if kind == "iff":
        return Iff(
            _random_formula(draw, names, depth - 1),
            _random_formula(draw, names, depth - 1),
        )
    if kind == "xor":
        return Xor(
            _random_formula(draw, names, depth - 1),
            _random_formula(draw, names, depth - 1),
        )
    k = draw(st.integers(2, 3))
    kids = [_random_formula(draw, names, depth - 1) for _ in range(k)]
    bound = draw(st.integers(0, k))
    return {"am": AtMost, "al": AtLeast, "ex": Exactly}[kind](bound, kids)


@st.composite
def formulas(draw, names=("a", "b", "c"), max_depth=3):
    return _random_formula(draw, list(names), draw(st.integers(0, max_depth)))


class TestSimplify:
    def test_constant_folding(self):
        x = Var("x")
        assert simplify(And(x, TRUE)) == x
        assert simplify(And(x, FALSE)) == FALSE
        assert simplify(Or(x, TRUE)) == TRUE
        assert simplify(Or(x, FALSE)) == x
        assert simplify(Not(Not(x))) == x
        assert simplify(Implies(TRUE, x)) == x
        assert simplify(Implies(x, TRUE)) == TRUE

    def test_empty_connectives(self):
        assert simplify(And()) == TRUE
        assert simplify(Or()) == FALSE

    @settings(max_examples=120, deadline=None)
    @given(formulas(), st.tuples(st.booleans(), st.booleans(), st.booleans()))
    def test_simplify_preserves_semantics(self, formula, bits):
        env = dict(zip("abc", bits))
        assert evaluate(simplify(formula), env) == evaluate(formula, env)

    @settings(max_examples=120, deadline=None)
    @given(formulas(), st.tuples(st.booleans(), st.booleans(), st.booleans()))
    def test_nnf_preserves_semantics(self, formula, bits):
        env = dict(zip("abc", bits))
        assert evaluate(to_nnf(formula), env) == evaluate(formula, env)

    @settings(max_examples=120, deadline=None)
    @given(formulas(), st.tuples(st.booleans(), st.booleans(), st.booleans()))
    def test_nnf_negation(self, formula, bits):
        env = dict(zip("abc", bits))
        assert evaluate(to_nnf(formula, negate=True), env) == (
            not evaluate(formula, env)
        )

    def test_nnf_pushes_negations_to_leaves(self):
        f = Not(And(Var("a"), Or(Var("b"), Not(Var("c")))))
        nnf = to_nnf(f)

        def check(node):
            if isinstance(node, Not):
                assert isinstance(node.child, Var)
            elif isinstance(node, (And, Or)):
                for child in node.children:
                    check(child)

        check(nnf)

    def test_cardinality_simplification_with_constants(self):
        vs = [Var("a"), TRUE, Var("b"), TRUE]
        out = simplify(AtMost(2, vs))
        # Two constants eat the bound: at most 0 of {a, b}.
        assert isinstance(out, AtMost) and out.bound == 0
        for env in itertools.product([False, True], repeat=2):
            assignment = dict(zip("ab", env))
            assert evaluate(out, assignment) == evaluate(
                AtMost(2, vs), assignment
            )
