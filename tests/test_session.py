"""Differential tests: ReasoningSession vs a fresh engine per query.

The session's contract is semantic equivalence with fresh compilation:
identical feasibility verdicts, semantically valid minimal conflicts,
exact optima on ordering objectives, and cost optima within the engine's
documented bisection tolerance. The tests drive both paths over the same
what-if sweeps and compare.
"""

from __future__ import annotations

import pytest

from repro.core.compile import compile_design
from repro.core.design import DesignRequest
from repro.core.engine import ReasoningEngine
from repro.core.query import Query
from repro.core.session import ReasoningSession
from repro.kb.ordering import Ordering
from repro.kb.workload import Workload
from repro.par.cache import QueryCache, request_cache_key


def _request(**kwargs) -> DesignRequest:
    defaults = dict(
        workloads=[Workload(name="app", objectives=["packet_processing"])],
    )
    defaults.update(kwargs)
    return DesignRequest(**defaults)


def _sweep() -> list[DesignRequest]:
    """Structural what-ifs plus infeasible probes over the tiny KB."""
    return [
        _request(),
        _request(required_systems=["StackB"]),
        _request(forbidden_systems=["StackA"]),
        _request(fixed_hardware={"FancyNIC": 2}),
        _request(budgets={"capex_usd": 100}),  # infeasible: too tight
        _request(workloads=[Workload(name="app", objectives=["teleportation"])]),
        _request(budgets={"capex_usd": 500_000}),
        _request(),  # re-ask the baseline
        _request(required_systems=["StackB"], budgets={"power_w": 100_000}),
    ]


def _assert_conflict_valid(kb, request, conflict):
    """The conflict must be UNSAT on a *fresh* compilation by itself."""
    compiled = compile_design(kb, request)
    lits = [compiled.selectors[name] for name in conflict.constraints]
    assert not compiled.solver.solve(lits)


class TestCheckParity:
    def test_verdicts_match_fresh_engine(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb, incremental=False)
        session = ReasoningSession(tiny_kb)
        for i, request in enumerate(_sweep()):
            fresh = engine.check(request)
            inc = session.check(request)
            assert fresh.feasible == inc.feasible, f"query {i}"
            if not inc.feasible:
                assert inc.conflict is not None
                _assert_conflict_valid(tiny_kb, request, inc.conflict)
        assert session.stats.compiles == 1
        assert session.stats.queries == len(_sweep())

    def test_infeasible_query_does_not_poison_session(self, tiny_kb):
        session = ReasoningSession(tiny_kb)
        assert session.check(_request()).feasible
        assert not session.check(_request(budgets={"capex_usd": 1})).feasible
        assert session.check(_request()).feasible

    def test_reasking_a_variant_adds_no_clauses(self, tiny_kb):
        session = ReasoningSession(tiny_kb)
        variant = _request(budgets={"capex_usd": 500_000})
        session.check(_request())
        session.check(variant)
        clauses_before = len(session._compiled.solver._clauses)
        encoded_before = session.stats.groups_encoded
        session.check(variant)
        session.check(_request())
        assert len(session._compiled.solver._clauses) == clauses_before
        assert session.stats.groups_encoded == encoded_before
        assert session.stats.groups_reused > 0


class TestSynthesizeParity:
    @pytest.fixture
    def ordered_kb(self, tiny_kb):
        tiny_kb.add_ordering(Ordering("StackB", "StackA", "latency"))
        return tiny_kb

    def test_ordering_optima_exact_and_costs_close(self, ordered_kb):
        engine = ReasoningEngine(ordered_kb, incremental=False)
        session = ReasoningSession(ordered_kb)
        sweep = [
            _request(optimize=["latency", "capex_usd"]),
            _request(optimize=["latency", "capex_usd"],
                     forbidden_systems=["StackB"]),
            _request(optimize=["capex_usd"]),
            _request(optimize=["latency", "capex_usd"]),  # re-ask
        ]
        for i, request in enumerate(sweep):
            fresh = engine.synthesize(request)
            inc = session.synthesize(request)
            assert fresh.feasible == inc.feasible, f"query {i}"
            if not fresh.feasible:
                continue
            fo = fresh.solution.objective_costs
            so = inc.solution.objective_costs
            assert fo.keys() == so.keys(), f"query {i}"
            for name in fo:
                if name in ("capex_usd", "power_w"):
                    # Both sides bisect to within ~2% of the true
                    # optimum, so they may differ by twice that.
                    slack = 0.05 * max(fo[name], so[name], 1)
                    assert abs(fo[name] - so[name]) <= slack, (i, name)
                else:
                    assert fo[name] == so[name], (i, name)

    def test_compare_matches_fresh_compare(self, ordered_kb):
        baseline = _request(optimize=["latency", "capex_usd"])
        alternative = _request(optimize=["latency", "capex_usd"],
                               required_systems=["StackB"])
        fresh = ReasoningEngine(ordered_kb, incremental=False).compare(
            baseline, alternative
        )
        inc = ReasoningSession(ordered_kb).compare(baseline, alternative)
        assert fresh.both_feasible == inc.both_feasible
        for name, delta in fresh.objective_deltas().items():
            if name not in ("capex_usd", "power_w"):
                assert inc.objective_deltas()[name] == delta


class TestInvalidation:
    def test_shape_change_rebases(self, tiny_kb):
        session = ReasoningSession(tiny_kb)
        session.check(_request())
        session.check(_request(inventory={"Box": 2, "PlainNIC": 4}))
        assert session.stats.rebases == 1
        assert session.stats.compiles == 2

    def test_kb_mutation_rebases(self, tiny_kb):
        from repro.kb.system import System
        from repro.logic.ast import TRUE

        session = ReasoningSession(tiny_kb)
        assert session.check(
            _request(workloads=[Workload(name="app", objectives=["magic"])])
        ).feasible is False
        tiny_kb.add_system(System(
            name="Wand", category="monitoring", solves=["magic"],
            requires=TRUE,
        ))
        outcome = session.check(
            _request(workloads=[Workload(name="app", objectives=["magic"])])
        )
        assert outcome.feasible
        assert session.stats.rebases == 1

    def test_incompatible_required_system_rebases_or_raises(self, tiny_kb):
        # A required system outside the compiled candidate pool cannot be
        # guard-switched; the session must rebase, not silently answer.
        session = ReasoningSession(tiny_kb)
        session.check(_request(candidate_systems=["StackA"]))
        outcome = session.check(_request(candidate_systems=["StackA", "StackB"],
                                         required_systems=["StackB"]))
        assert outcome.feasible
        assert session.stats.rebases == 1


class TestEngineIntegration:
    def test_cache_key_includes_configuration(self, tiny_kb):
        request = _request()
        keys = {
            request_cache_key("check", tiny_kb, request, config)
            for config in ("", "inc=0;pp=1", "inc=1;pp=1", "inc=1;pp=0")
        }
        assert len(keys) == 4
        inc = ReasoningEngine(tiny_kb, cache=QueryCache(), incremental=True)
        fresh = ReasoningEngine(tiny_kb, cache=QueryCache(), incremental=False)
        query = Query("check", request)
        assert inc.executor.cache_key(query) != fresh.executor.cache_key(query)
        # Same request, different verb or options -> different key.
        assert inc.executor.cache_key(Query("diagnose", request)) != (
            inc.executor.cache_key(query)
        )
        assert inc.executor.cache_key(
            Query("equivalence", request, class_limit=4)
        ) != inc.executor.cache_key(
            Query("equivalence", request, class_limit=64)
        )

    def test_check_many_routes_through_session(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        sweep = _sweep()
        outcomes = engine.check_many(sweep)
        assert engine.executor._session is not None
        assert engine.session().stats.queries > 0
        assert engine.session().stats.compiles == 1
        baseline = ReasoningEngine(tiny_kb, incremental=False).check_many(sweep)
        assert [o.feasible for o in outcomes] == [o.feasible for o in baseline]

    def test_non_incremental_engine_never_builds_session(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb, incremental=False)
        engine.check_many(_sweep()[:3])
        assert engine.executor._session is None


class TestPoisonedSessions:
    """Regression: a solver exception mid-query must not leave the
    session silently reusable (the daemon pools sessions, so corrupted
    solver state would otherwise leak into later requests)."""

    def test_solver_exception_poisons_until_reset(self, tiny_kb):
        from repro.errors import SolverStateError

        session = ReasoningSession(tiny_kb)
        request = _request()
        assert session.check(request).feasible
        assert not session.poisoned

        original_view = session.view
        fail = {"on": True}

        def flaky_view(req):
            if fail["on"]:
                fail["on"] = False
                raise RuntimeError("injected mid-solve failure")
            return original_view(req)

        session.view = flaky_view
        with pytest.raises(RuntimeError):
            session.check(request)
        assert session.poisoned

        # A poisoned session refuses further queries instead of
        # answering from corrupted solver state.
        with pytest.raises(SolverStateError):
            session.check(request)

        # reset() recompiles from scratch and clears the poison.
        session.reset()
        assert not session.poisoned
        outcome = session.check(request)
        assert outcome.feasible
        assert session.stats.compiles >= 2

    def test_validation_errors_leave_session_clean(self, tiny_kb):
        from repro.errors import QueryError

        session = ReasoningSession(tiny_kb)
        assert session.check(_request()).feasible
        with pytest.raises(QueryError):
            session._executor.execute(Query("explain", _request()))
        assert not session.poisoned
        assert session.check(_request()).feasible
