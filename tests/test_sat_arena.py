"""Arena clause storage, watcher lifecycle, and inprocessing tests.

Regression coverage for the flat-arena rewrite of ``repro.sat.solver``:

- the watcher-leak bugfix — the pre-arena solver purged ``deleted``
  clauses only from watch buckets propagation happened to visit, so DB
  reductions leaked dead watchers in cold buckets; arena GC rebuilds
  every bucket, which these tests pin down via
  :meth:`~repro.sat.Solver.watcher_stats`;
- the resume-state bugfix — ``solve_step()`` interleaved with
  preprocessing/inprocessing passes must stay deterministic and agree
  with a straight ``solve()``;
- the inprocessing pass itself — verdicts are preserved, statistics are
  recorded, and the schedule is conflict-count keyed (so ``solve_step``
  trajectories match solo runs).
"""

from __future__ import annotations

import random

import pytest

from repro.sat import Solver
from repro.sat.preprocess import preprocess_solver
from tests.conftest import brute_force_sat, random_clauses


def _php_clauses(holes: int) -> tuple[int, list[list[int]]]:
    pigeons = holes + 1

    def var(p: int, h: int) -> int:
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


def _load(num_vars: int, clauses: list[list[int]], **kwargs) -> Solver:
    solver = Solver(**kwargs)
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver


def _assert_watchers_exact(solver: Solver) -> None:
    """Every live clause is watched exactly twice; no dead entries."""
    stats = solver.watcher_stats()
    assert stats["long_watcher_entries"] == 2 * stats["live_long_clauses"]
    assert stats["binary_watcher_entries"] == 2 * stats["live_binary_clauses"]


class TestWatcherLifecycle:
    def test_no_leak_after_reductions(self):
        """DB reductions + arena GC leave zero dead watcher entries.

        The pre-arena solver failed this: reductions flagged clauses
        ``deleted`` and relied on propagation visits to purge buckets,
        so cold buckets kept watchers of dead clauses indefinitely.
        """
        num_vars, clauses = _php_clauses(6)
        solver = _load(num_vars, clauses, restart_base=50)
        solver._max_learnts = 40  # force frequent reductions
        assert solver.solve() is False
        assert solver.stats.deleted_clauses > 0
        assert solver.stats.arena_compactions > 0
        _assert_watchers_exact(solver)

    def test_no_leak_with_inprocessing(self):
        num_vars, clauses = _php_clauses(6)
        solver = _load(num_vars, clauses, restart_base=30,
                       inprocess_interval=100)
        solver._max_learnts = 40
        assert solver.solve() is False
        assert solver.stats.inprocessings > 0
        _assert_watchers_exact(solver)

    def test_no_leak_across_incremental_solves(self):
        rng = random.Random(5)
        num_vars = 40
        clauses = random_clauses(rng, num_vars, 160)
        solver = _load(num_vars, clauses, restart_base=25)
        solver._max_learnts = 30
        for trial in range(6):
            v = rng.randint(1, num_vars)
            solver.solve([v if trial % 2 else -v])
            _assert_watchers_exact(solver)

    def test_arena_compaction_remaps_reasons(self):
        """GC during search must keep trail reasons pointing at live
        clauses — solving to a verdict after forced compactions is the
        end-to-end check (a stale cref would corrupt conflict analysis).
        """
        num_vars, clauses = _php_clauses(7)
        solver = _load(num_vars, clauses, restart_base=40)
        solver._max_learnts = 60
        solver._arena_gc_limit = 1  # compact at every reduction window
        assert solver.solve() is False
        assert solver.stats.arena_compactions >= 1


class TestSolveStepSimplifyInterleaving:
    """The resume-state bugfix: simplification passes between
    ``solve_step`` segments must not leave stale resume state behind."""

    def _interleaved_run(self, num_vars, clauses, preprocess_after):
        solver = _load(num_vars, clauses, restart_base=30)
        steps = 0
        while True:
            result = solver.solve_step()
            if result.satisfiable is not None:
                return solver, result, steps
            steps += 1
            if steps == preprocess_after:
                preprocess_solver(solver)

    @pytest.mark.parametrize("preprocess_after", [1, 2, 3])
    def test_verdict_survives_mid_run_preprocess(self, preprocess_after):
        num_vars, clauses = _php_clauses(6)
        solver, result, _ = self._interleaved_run(
            num_vars, clauses, preprocess_after
        )
        assert result.satisfiable is False

    @pytest.mark.parametrize("preprocess_after", [1, 2])
    def test_interleaved_runs_are_deterministic(self, preprocess_after):
        num_vars, clauses = _php_clauses(6)
        runs = [
            self._interleaved_run(num_vars, clauses, preprocess_after)
            for _ in range(2)
        ]
        (s1, r1, n1), (s2, r2, n2) = runs
        assert r1.satisfiable == r2.satisfiable
        assert n1 == n2
        assert s1.stats.conflicts == s2.stats.conflicts
        assert s1.stats.propagations == s2.stats.propagations

    def test_sat_model_valid_after_mid_run_preprocess(self):
        rng = random.Random(11)
        found = 0
        while found < 10:
            num_vars = rng.randint(4, 8)
            clauses = random_clauses(rng, num_vars, rng.randint(8, 24))
            if not brute_force_sat(num_vars, clauses):
                continue
            found += 1
            solver = _load(num_vars, clauses, restart_base=4)
            result = solver.solve_step()
            if result.satisfiable is None:
                preprocess_solver(solver)
                while result.satisfiable is None:
                    result = solver.solve_step()
            assert result.satisfiable is True
            model = solver.model()
            for clause in clauses:
                assert any(
                    model[abs(lit)] == (lit > 0) for lit in clause
                ), (clauses, clause, model)

    def test_solve_step_matches_solve_with_inprocessing(self):
        """Conflict-count-keyed inprocessing fires identically in
        ``solve_step`` and ``solve``, so the stepped run follows the
        solo trajectory exactly."""
        num_vars, clauses = _php_clauses(6)
        solo = _load(num_vars, clauses, restart_base=30,
                     inprocess_interval=100)
        assert solo.solve() is False

        stepped = _load(num_vars, clauses, restart_base=30,
                        inprocess_interval=100)
        result = stepped.solve_step()
        while result.satisfiable is None:
            result = stepped.solve_step()
        assert result.satisfiable is False
        assert stepped.stats.conflicts == solo.stats.conflicts
        assert stepped.stats.propagations == solo.stats.propagations
        assert stepped.stats.inprocessings == solo.stats.inprocessings
        assert stepped.stats.inprocessings > 0


class TestInprocessing:
    def test_verdict_and_stats(self):
        num_vars, clauses = _php_clauses(6)
        plain = _load(num_vars, clauses, enable_inprocessing=False)
        assert plain.solve() is False
        assert plain.stats.inprocessings == 0

        inproc = _load(num_vars, clauses, restart_base=30,
                       inprocess_interval=100)
        assert inproc.solve() is False
        assert inproc.stats.inprocessings > 0

    def test_differential_with_aggressive_schedule(self):
        """Verdicts with an aggressive inprocessing schedule match brute
        force on random instances; SAT models stay valid."""
        rng = random.Random(23)
        for _ in range(60):
            num_vars = rng.randint(3, 8)
            clauses = random_clauses(rng, num_vars, rng.randint(6, 28))
            expected = brute_force_sat(num_vars, clauses)
            solver = _load(num_vars, clauses, restart_base=4,
                           inprocess_interval=8)
            got = solver.solve()
            assert got == expected, (num_vars, clauses)
            if got:
                model = solver.model()
                for clause in clauses:
                    assert any(
                        model[abs(lit)] == (lit > 0) for lit in clause
                    ), (clauses, clause, model)

    def test_incremental_assumptions_after_inprocessing(self):
        """Cores and verdicts remain sound on solves issued after an
        inprocessing pass rewrote the clause database."""
        rng = random.Random(41)
        for _ in range(20):
            num_vars = rng.randint(4, 7)
            clauses = random_clauses(rng, num_vars, rng.randint(8, 20))
            solver = _load(num_vars, clauses, restart_base=4,
                           inprocess_interval=8)
            baseline = brute_force_sat(num_vars, clauses)
            assert solver.solve() == baseline
            for v in range(1, num_vars + 1):
                if v in solver.eliminated_vars:
                    continue
                expected = brute_force_sat(num_vars, clauses + [[v]])
                got = solver.solve([v])
                assert got == expected, (clauses, v)
                if not got:
                    core = solver.unsat_core()
                    assert set(core) <= {v}
