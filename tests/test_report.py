"""Tests for the architect-facing report renderer."""

from __future__ import annotations

import pytest

from repro.core.design import DesignRequest
from repro.core.engine import ReasoningEngine
from repro.core.report import render_report
from repro.kb.workload import Workload


@pytest.fixture
def engine(tiny_kb):
    return ReasoningEngine(tiny_kb)


def _request(**kwargs):
    defaults = dict(workloads=[Workload(
        name="app", objectives=["packet_processing"], peak_cores=40,
    )])
    defaults.update(kwargs)
    return DesignRequest(**defaults)


class TestFeasibleReport:
    def test_contains_all_sections(self, tiny_kb, engine):
        request = _request(optimize=["capex_usd"],
                           context={"datacenter_fabric": True})
        outcome = engine.synthesize(request)
        report = render_report(tiny_kb, request, outcome)
        assert "VERDICT: feasible." in report
        assert "Selected systems:" in report
        assert "Bill of materials:" in report
        assert "TOTAL" in report
        assert "Resource ledger:" in report
        assert "cpu_cores" in report
        assert "Optimize: capex_usd" in report
        assert "datacenter_fabric=True" in report

    def test_bom_totals_match_solution(self, tiny_kb, engine):
        request = _request()
        outcome = engine.synthesize(request)
        report = render_report(tiny_kb, request, outcome)
        assert f"{outcome.solution.cost_usd:,}" in report

    def test_workload_demands_listed(self, tiny_kb, engine):
        request = _request(workloads=[Workload(
            name="big", objectives=["packet_processing"],
            peak_cores=64, peak_gbps=10, peak_mem_gb=100,
        )])
        outcome = engine.synthesize(request)
        report = render_report(tiny_kb, request, outcome)
        assert "64 cores" in report
        assert "10 Gbps" in report
        assert "100 GB" in report

    def test_features_rendered(self, tiny_kb, engine):
        from repro.kb.dsl import prop
        from repro.kb.system import Feature, System

        tiny_kb.add_system(System(
            name="Featureful", category="monitoring", solves=["ft"],
            features=[Feature("turbo")],
        ))
        request = _request(workloads=[Workload(
            name="w", objectives=["packet_processing", "ft"],
        )])
        compiled = engine.compile(request)
        assert compiled.solve([compiled.feat_lits[("Featureful", "turbo")]])
        outcome_model = compiled.solver.model()
        solution = compiled.extract_solution(outcome_model)
        from repro.core.design import DesignOutcome

        report = render_report(
            tiny_kb, request, DesignOutcome(True, solution=solution)
        )
        assert "+turbo" in report


class TestInfeasibleReport:
    def test_conflict_rendered(self, tiny_kb, engine):
        request = _request(
            required_systems=["StackA"], forbidden_systems=["StackA"],
        )
        outcome = engine.check(request)
        report = render_report(tiny_kb, request, outcome)
        assert "no compliant design exists" in report
        assert "required:StackA" in report
        assert "forbidden:StackA" in report

    def test_custom_title(self, tiny_kb, engine):
        request = _request()
        outcome = engine.synthesize(request)
        report = render_report(tiny_kb, request, outcome,
                               title="Q3 build-out")
        assert report.startswith("Q3 build-out\n============")
