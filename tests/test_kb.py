"""Tests for the knowledge-representation layer."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicateEntryError,
    UnknownEntityError,
    ValidationError,
)
from repro.kb.dsl import ctx, feat, hw, namespace_of, obj, parse_var, prop, sys_var, wl
from repro.kb.hardware import Hardware, NICSpec, ServerSpec, SwitchSpec
from repro.kb.ordering import Ordering, OrderingGraph
from repro.kb.registry import KnowledgeBase, formula_size
from repro.kb.resources import ResourceDemand, ResourceLedger
from repro.kb.rules import Rule
from repro.kb.serialize import formula_from_dict, formula_to_dict
from repro.kb.system import Feature, System
from repro.kb.workload import Workload
from repro.logic.ast import TRUE, And, Implies, Not, Or, Var


class TestDsl:
    def test_namespaces(self):
        assert sys_var("Linux").name == "sys::Linux"
        assert prop("nic", "RDMA").name == "prop::nic::RDMA"
        assert feat("Snap", "pony").name == "feat::Snap::pony"
        assert ctx("dc").name == "ctx::dc"
        assert wl("app", "short_flows").name == "wl::app::short_flows"
        assert hw("FF-100G-32P").name == "hw::FF-100G-32P"
        assert obj("load_balancing").name == "obj::load_balancing"

    def test_invalid_scope(self):
        with pytest.raises(ValueError):
            prop("toaster", "HEAT")

    def test_parse_var(self):
        assert parse_var("prop::nic::RDMA") == ("prop", "nic", "RDMA")
        assert namespace_of("sys::Linux") == "sys"


class TestSystem:
    def test_roundtrip(self):
        system = System(
            name="Timely",
            category="congestion_control",
            solves=["bandwidth_allocation"],
            requires=prop("nic", "NIC_TIMESTAMPS") & prop("switch", "QOS_CLASSES_8"),
            provides=["net::OVERLAY_ENCAP"],
            conflicts=["Swift"],
            resources=[ResourceDemand("cpu_cores", fixed=2, per_kflow=0.5)],
            features=[Feature("turbo", requires=ctx("fast"))],
            sources=["Timely SIGCOMM'15"],
            research=False,
        )
        clone = System.from_dict(system.to_dict())
        assert clone.name == system.name
        assert clone.requires == system.requires
        assert clone.resources == system.resources
        assert clone.features[0].requires == system.features[0].requires

    def test_unknown_category_rejected(self):
        with pytest.raises(ValidationError):
            System(name="X", category="quantum_router")

    def test_bad_provides_rejected(self):
        with pytest.raises(ValidationError):
            System(name="X", category="monitoring", provides=["RDMA"])

    def test_demand_lookup(self):
        system = System(
            name="X",
            category="monitoring",
            resources=[ResourceDemand("cpu_cores", fixed=4)],
        )
        assert system.demand_for("cpu_cores").fixed == 4
        assert system.demand_for("p4_stages") is None


class TestHardware:
    def test_switch_provides(self):
        spec = SwitchSpec(
            model="S", port_gbps=100, ports=32, memory_mb=128, power_w=500,
            cost_usd=10_000, qcn=True, int_telemetry=True,
            p4_programmable=True, p4_stages=12, deep_buffers=True,
        )
        provided = spec.provides()
        for expected in ("switch::QCN", "switch::INT",
                         "switch::P4_PROGRAMMABLE", "switch::DEEP_BUFFERS",
                         "switch::QOS_CLASSES_8"):
            assert expected in provided

    def test_nic_rate_thresholds(self):
        low = NICSpec(model="L", rate_gbps=25, power_w=10, cost_usd=100)
        mid = NICSpec(model="M", rate_gbps=40, power_w=10, cost_usd=100)
        high = NICSpec(model="H", rate_gbps=100, power_w=10, cost_usd=100)
        assert "nic::NIC_RATE_40G" not in low.provides()
        assert "nic::NIC_RATE_40G" in mid.provides()
        assert "nic::NIC_RATE_100G" in high.provides()

    def test_capacities_filter_zeros(self):
        hardware = Hardware(
            spec=NICSpec(model="N", rate_gbps=25, power_w=10, cost_usd=100)
        )
        assert "smartnic_cores" not in hardware.capacities()

    def test_roundtrip(self):
        hardware = Hardware(
            spec=ServerSpec(model="Srv", cores=64, mem_gb=512, power_w=700,
                            cost_usd=20_000, cxl_expander=True),
            max_units=10,
        )
        clone = Hardware.from_dict(hardware.to_dict())
        assert clone.model == "Srv"
        assert clone.kind == "server"
        assert clone.spec == hardware.spec

    def test_invalid_max_units(self):
        with pytest.raises(ValidationError):
            Hardware(
                spec=ServerSpec(model="S", cores=1, mem_gb=1, power_w=1,
                                cost_usd=1),
                max_units=0,
            )

    def test_bad_kind_payload(self):
        with pytest.raises(ValidationError):
            Hardware.from_dict({"kind": "router", "spec": {}})


class TestWorkload:
    def test_roundtrip_with_bounds(self):
        workload = Workload(
            name="inference",
            properties=["dc_flows"],
            objectives=["load_balancing"],
            peak_cores=100,
            peak_gbps=10,
            peak_mem_gb=64,
            kflows=5.0,
        ).set_performance_bound("load_balancing", "ECMP", "load_balance_quality")
        clone = Workload.from_dict(workload.to_dict())
        assert clone.performance_bounds == workload.performance_bounds
        assert clone.peak_mem_gb == 64

    def test_negative_demand_rejected(self):
        with pytest.raises(ValidationError):
            Workload(name="w", peak_cores=-1)


class TestOrdering:
    def test_self_edge_rejected(self):
        with pytest.raises(ValidationError):
            Ordering("A", "A", "latency")

    def test_conditional_activation(self):
        edge = Ordering("A", "B", "throughput", condition=ctx("fast"))
        assert not edge.active_under({})
        assert edge.active_under({"ctx::fast": True})

    def test_transitive_dominance(self):
        orderings = [
            Ordering("A", "B", "d"),
            Ordering("B", "C", "d"),
        ]
        graph = OrderingGraph.build(orderings, "d", systems=["A", "B", "C", "D"])
        assert graph.better_than("A", "C")
        assert not graph.better_than("C", "A")
        assert not graph.comparable("A", "D")
        assert ("A", "D") in graph.incomparable_pairs()

    def test_cycle_detection(self):
        orderings = [
            Ordering("A", "B", "d"),
            Ordering("B", "A", "d"),
        ]
        with pytest.raises(ValidationError):
            OrderingGraph.build(orderings, "d")

    def test_conditional_cycle_inactive(self):
        orderings = [
            Ordering("A", "B", "d"),
            Ordering("B", "A", "d", condition=ctx("weird")),
        ]
        graph = OrderingGraph.build(orderings, "d")
        assert graph.better_than("A", "B")
        with pytest.raises(ValidationError):
            OrderingGraph.build(orderings, "d", context={"ctx::weird": True})

    def test_not_worse_than(self):
        orderings = [
            Ordering("Top", "Mid", "d"),
            Ordering("Mid", "Low", "d"),
        ]
        graph = OrderingGraph.build(
            orderings, "d", systems=["Top", "Mid", "Low", "Other"]
        )
        assert graph.not_worse_than("Mid") == {"Top", "Other"}
        assert graph.strictly_better_than("Low") == {"Top", "Mid"}

    def test_ranks(self):
        orderings = [
            Ordering("Top", "Mid", "d"),
            Ordering("Mid", "Low", "d"),
            Ordering("Top", "Low", "d"),
        ]
        graph = OrderingGraph.build(orderings, "d", systems=["Top", "Mid", "Low"])
        assert graph.ranks() == {"Top": 0, "Mid": 1, "Low": 2}


class TestRules:
    def test_roundtrip(self):
        rule = Rule(
            name="pfc",
            formula=Implies(prop("net", "PFC_ENABLED"),
                            Not(prop("net", "FLOODING"))),
            severity="hard",
        )
        clone = Rule.from_dict(rule.to_dict())
        assert clone.formula == rule.formula

    def test_soft_rule_needs_weight(self):
        with pytest.raises(ValidationError):
            Rule(name="r", formula=TRUE, severity="soft", weight=0)

    def test_bad_severity(self):
        with pytest.raises(ValidationError):
            Rule(name="r", formula=TRUE, severity="medium")


class TestSerialize:
    @pytest.mark.parametrize("formula", [
        TRUE,
        Var("x"),
        Not(Var("x")),
        And(Var("a"), Or(Var("b"), Not(Var("c")))),
        Implies(Var("a"), Var("b")),
        Var("a").iff(Var("b")),
        Var("a") ^ Var("b"),
    ])
    def test_formula_roundtrip(self, formula):
        assert formula_from_dict(formula_to_dict(formula)) == formula

    def test_cardinality_roundtrip(self):
        from repro.logic.ast import AtLeast, AtMost, Exactly

        for node in (AtMost(2, [Var("a"), Var("b")]),
                     AtLeast(1, [Var("a")]),
                     Exactly(1, [Var("a"), Var("b"), Var("c")])):
            assert formula_from_dict(formula_to_dict(node)) == node

    def test_malformed_payload(self):
        with pytest.raises(ValidationError):
            formula_from_dict({"quantum": ["a"]})
        with pytest.raises(ValidationError):
            formula_from_dict(42)


class TestRegistry:
    def test_duplicates_rejected(self, tiny_kb):
        with pytest.raises(DuplicateEntryError):
            tiny_kb.add_system(System(name="StackA", category="network_stack"))
        with pytest.raises(DuplicateEntryError):
            tiny_kb.add_hardware(Hardware(
                spec=NICSpec(model="PlainNIC", rate_gbps=1, power_w=1,
                             cost_usd=1)
            ))

    def test_unknown_lookup(self, tiny_kb):
        with pytest.raises(UnknownEntityError):
            tiny_kb.system("Nope")
        with pytest.raises(UnknownEntityError):
            tiny_kb.hardware_model("Nope")

    def test_category_and_objective_queries(self, tiny_kb):
        assert {s.name for s in tiny_kb.systems_in_category("network_stack")} == {
            "StackA", "StackB",
        }
        assert [s.name for s in tiny_kb.systems_solving("detect_queue_length")] == [
            "Monitor",
        ]
        assert "packet_processing" in tiny_kb.objectives()

    def test_validation_flags_dangling_conflict(self, tiny_kb):
        tiny_kb.add_system(System(
            name="Broken", category="monitoring", conflicts=["Ghost"],
        ))
        issues = tiny_kb.validate()
        assert any(
            issue.severity == "error" and "Ghost" in issue.message
            for issue in issues
        )
        with pytest.raises(ValidationError):
            tiny_kb.validate_or_raise()

    def test_validation_flags_ordering_unknown_system(self, tiny_kb):
        tiny_kb.add_ordering(Ordering("StackA", "Phantom", "latency"))
        assert any(
            "Phantom" in issue.message for issue in tiny_kb.validate()
        )

    def test_spec_length_counts_facts(self, tiny_kb):
        before = tiny_kb.spec_length()
        tiny_kb.add_system(System(
            name="Extra",
            category="monitoring",
            solves=["x"],
            requires=And(prop("nic", "RDMA"), ctx("dc")),
        ))
        assert tiny_kb.spec_length() > before

    def test_kb_json_roundtrip(self, tiny_kb):
        tiny_kb.add_rule(Rule(name="r", formula=Not(prop("net", "FLOODING"))))
        tiny_kb.add_ordering(Ordering("StackA", "StackB", "throughput",
                                      condition=ctx("fast")))
        clone = KnowledgeBase.from_json(tiny_kb.to_json())
        assert set(clone.systems) == set(tiny_kb.systems)
        assert set(clone.hardware) == set(tiny_kb.hardware)
        assert clone.orderings[0].condition == tiny_kb.orderings[0].condition
        assert clone.stats() == tiny_kb.stats()

    def test_merge(self, tiny_kb):
        other = KnowledgeBase()
        other.add_system(System(name="New", category="firewall"))
        tiny_kb.merge(other)
        assert "New" in tiny_kb.systems

    def test_formula_size(self):
        assert formula_size(Var("a")) == 1
        assert formula_size(And(Var("a"), Not(Var("b")))) == 4


class TestResources:
    def test_demand_evaluation_rounds_up(self):
        demand = ResourceDemand("cpu_cores", fixed=2, per_kflow=0.5,
                                per_gbps=0.1)
        assert demand.evaluate(kflows=3, gbps=1) == 2 + 2  # ceil(1.6) = 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceDemand("cpu_cores", fixed=-1)

    def test_ledger_deficits(self):
        ledger = ResourceLedger()
        ledger.demand("cpu_cores", 100)
        ledger.supply("cpu_cores", 60)
        ledger.demand("p4_stages", 4)
        assert ledger.deficits() == {"cpu_cores": 40, "p4_stages": 4}
