"""Cross-check the CDCL solver against an independent reference DPLL.

Brute-force enumeration caps out around 8 variables; this reference
solver (plain recursive DPLL with unit propagation, no shared code with
`repro.sat`) extends the differential-testing range to ~16 variables and
hundreds of clauses — large enough to exercise clause learning, restarts,
and database reduction on instances with non-trivial structure.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import Solver
from tests.conftest import random_clauses


def _reference_dpll(clauses: list[list[int]]) -> bool:
    """Independent DPLL: unit propagation + branching. No heuristics."""

    def propagate(clause_set, assignment):
        changed = True
        while changed:
            changed = False
            next_set = []
            for clause in clause_set:
                live = []
                satisfied = False
                for lit in clause:
                    value = assignment.get(abs(lit))
                    if value is None:
                        live.append(lit)
                    elif value == (lit > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not live:
                    return None  # conflict
                if len(live) == 1:
                    assignment[abs(live[0])] = live[0] > 0
                    changed = True
                else:
                    next_set.append(live)
            clause_set = next_set
        return clause_set

    def solve(clause_set, assignment):
        clause_set = propagate(clause_set, dict(assignment))
        if clause_set is None:
            return False
        if not clause_set:
            return True
        # Re-propagate into a fresh assignment each branch for simplicity.
        merged = dict(assignment)
        residual = propagate(clause_set, merged)
        if residual is None:
            return False
        if not residual:
            return True
        branch_var = abs(residual[0][0])
        for value in (True, False):
            trial = dict(merged)
            trial[branch_var] = value
            if solve(residual, trial):
                return True
        return False

    return solve(clauses, {})


def _cdcl_verdict(n: int, clauses: list[list[int]]) -> bool:
    solver = Solver()
    solver.new_vars(n)
    for clause in clauses:
        solver.add_clause(clause)
    verdict = solver.solve()
    if verdict:
        model = solver.model()
        assert all(
            any((lit > 0) == model[abs(lit)] for lit in clause)
            for clause in clauses
        ), "model must satisfy every clause"
    return verdict


class TestDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_medium_random_instances(self, seed):
        rng = random.Random(seed * 7919)
        for _ in range(25):
            n = rng.randint(8, 16)
            m = rng.randint(n, int(4.5 * n))
            clauses = random_clauses(rng, n, m, max_len=3)
            assert _cdcl_verdict(n, clauses) == _reference_dpll(clauses)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_exact_3sat_near_threshold(self, seed):
        rng = random.Random(seed)
        n = rng.randint(10, 14)
        m = int(4.26 * n)
        clauses = [
            [v * rng.choice([1, -1])
             for v in rng.sample(range(1, n + 1), 3)]
            for _ in range(m)
        ]
        assert _cdcl_verdict(n, clauses) == _reference_dpll(clauses)

    def test_structured_instances(self):
        # Chains of equivalences with a parity twist: SAT iff even twist.
        for n, twist, expected in ((10, 0, True), (10, 1, False),
                                   (13, 1, False), (13, 2, True)):
            clauses = []
            for i in range(1, n):
                clauses.append([-i, i + 1])
                clauses.append([i, -(i + 1)])
            # Equivalence chain; now force x1 != xn `twist`-mod-2 times.
            if twist % 2:
                clauses.append([1, n])
                clauses.append([-1, -n])
            else:
                clauses.append([1, -n])
                clauses.append([-1, n])
            assert _cdcl_verdict(n, clauses) == expected
            assert _reference_dpll(clauses) == expected
