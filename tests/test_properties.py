"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.kb.ordering import Ordering, OrderingGraph
from repro.kb.registry import KnowledgeBase
from repro.kb.system import SYSTEM_CATEGORIES, System
from repro.logic.pseudo_boolean import PBTerm, normalize_pb
from repro.sat import Solver, check_rup_proof
from repro.topology import build_fat_tree
from tests.conftest import brute_force_sat, random_clauses

# ---------------------------------------------------------------------------
# Ordering graphs
# ---------------------------------------------------------------------------

_SYSTEMS = [f"S{i}" for i in range(6)]


@st.composite
def _dags(draw):
    """Random acyclic edge sets over _SYSTEMS (i -> j only if i < j)."""
    edges = []
    for i in range(len(_SYSTEMS)):
        for j in range(i + 1, len(_SYSTEMS)):
            if draw(st.booleans()):
                edges.append(Ordering(_SYSTEMS[i], _SYSTEMS[j], "d"))
    return edges


class TestOrderingProperties:
    @settings(max_examples=60, deadline=None)
    @given(_dags())
    def test_better_than_is_transitive(self, edges):
        graph = OrderingGraph.build(edges, "d", systems=_SYSTEMS)
        for a in _SYSTEMS:
            for b in _SYSTEMS:
                for c in _SYSTEMS:
                    if graph.better_than(a, b) and graph.better_than(b, c):
                        assert graph.better_than(a, c)

    @settings(max_examples=60, deadline=None)
    @given(_dags())
    def test_better_than_is_antisymmetric(self, edges):
        graph = OrderingGraph.build(edges, "d", systems=_SYSTEMS)
        for a in _SYSTEMS:
            assert not graph.better_than(a, a)
            for b in _SYSTEMS:
                if graph.better_than(a, b):
                    assert not graph.better_than(b, a)

    @settings(max_examples=60, deadline=None)
    @given(_dags())
    def test_ranks_respect_edges(self, edges):
        graph = OrderingGraph.build(edges, "d", systems=_SYSTEMS)
        ranks = graph.ranks()
        for better, worse in graph.graph.edges:
            assert ranks[better] < ranks[worse]

    @settings(max_examples=60, deadline=None)
    @given(_dags())
    def test_not_worse_than_excludes_descendants(self, edges):
        graph = OrderingGraph.build(edges, "d", systems=_SYSTEMS)
        for baseline in _SYSTEMS:
            allowed = graph.not_worse_than(baseline)
            assert baseline not in allowed
            for system in allowed:
                assert not graph.better_than(baseline, system)


# ---------------------------------------------------------------------------
# PB normalization
# ---------------------------------------------------------------------------

class TestNormalizeProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_normalization_preserves_solutions(self, data):
        n = data.draw(st.integers(1, 4))
        terms = [
            PBTerm(data.draw(st.integers(-6, 6)),
                   (i + 1) * data.draw(st.sampled_from([1, -1])))
            for i in range(n)
        ]
        bound = data.draw(st.integers(-12, 12))
        norm_terms, norm_bound = normalize_pb(terms, bound)
        assert all(t.weight > 0 for t in norm_terms)
        import itertools

        for bits in itertools.product([False, True], repeat=n):
            def value(term_list):
                total = 0
                for term in term_list:
                    var = abs(term.lit)
                    truth = bits[var - 1]
                    if term.lit < 0:
                        truth = not truth
                    if truth:
                        total += term.weight
                return total

            assert (value(terms) <= bound) == (
                value(norm_terms) <= norm_bound
            )


# ---------------------------------------------------------------------------
# Solver + proofs
# ---------------------------------------------------------------------------

class TestSolverProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_every_unsat_answer_has_verifying_proof(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(3, 7)
        clauses = random_clauses(rng, n, rng.randint(8, 30))
        assume(not brute_force_sat(n, clauses))
        solver = Solver(proof_logging=True)
        solver.new_vars(n)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is False
        assert check_rup_proof(clauses, solver.proof)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_incremental_answers_are_monotone(self, seed):
        """Adding clauses can only shrink the model set (SAT -> UNSAT,
        never the reverse)."""
        import random

        rng = random.Random(seed)
        n = rng.randint(2, 6)
        clauses = random_clauses(rng, n, rng.randint(4, 20))
        solver = Solver()
        solver.new_vars(n)
        previous = True
        for clause in clauses:
            solver.add_clause(clause)
            current = solver.solve()
            assert not (previous is False and current is True)
            previous = current


# ---------------------------------------------------------------------------
# Topology invariants
# ---------------------------------------------------------------------------

class TestTopologyProperties:
    @settings(max_examples=6, deadline=None)
    @given(st.sampled_from([2, 4, 6]))
    def test_fat_tree_degree_invariants(self, k):
        topo = build_fat_tree(k)
        half = k // 2
        for switch in topo.switches(tier=2):
            assert len(topo.neighbors(switch)) == k  # one per pod
        for switch in topo.switches(tier=1):
            # k/2 down to edges + k/2 up to cores.
            assert len(topo.neighbors(switch)) == k
        for switch in topo.switches(tier=0):
            assert len(topo.neighbors(switch)) == half + half


# ---------------------------------------------------------------------------
# KB registry
# ---------------------------------------------------------------------------

class TestRegistryProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(
            st.integers(0, 50),
            st.sampled_from(list(SYSTEM_CATEGORIES)),
        ),
        max_size=12, unique_by=lambda t: t[0],
    ))
    def test_json_roundtrip_any_system_set(self, specs):
        kb = KnowledgeBase()
        for index, category in specs:
            kb.add_system(System(name=f"Sys{index}", category=category,
                                 solves=[f"obj{index % 3}"]))
        clone = KnowledgeBase.from_json(kb.to_json())
        assert clone.stats() == kb.stats()
        assert {
            (s.name, s.category) for s in clone.systems.values()
        } == {
            (s.name, s.category) for s in kb.systems.values()
        }
