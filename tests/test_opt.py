"""Tests for MaxSAT, lexicographic, linear minimization, and enumeration."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.errors import SolverStateError
from repro.logic.pseudo_boolean import PBTerm
from repro.opt import (
    LexObjective,
    MaxSatSolver,
    count_models,
    enumerate_models,
    equivalence_classes,
    lexicographic_optimize,
)
from repro.opt.linear import expr_value, minimize_linexpr
from repro.sat import Solver
from repro.smt import IntEncoder, IntVar
from tests.conftest import random_clauses


def _brute_min_cost(n, hard, soft):
    best = None
    for bits in itertools.product([False, True], repeat=n):
        if not all(
            any((lit > 0) == bits[abs(lit) - 1] for lit in cl) for cl in hard
        ):
            continue
        cost = sum(
            w
            for cl, w in soft
            if not any((lit > 0) == bits[abs(lit) - 1] for lit in cl)
        )
        best = cost if best is None else min(best, cost)
    return best


class TestMaxSat:
    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    def test_simple_tradeoff(self, strategy):
        m = MaxSatSolver()
        a, b = m.solver.new_vars(2)
        m.add_hard([a, b])
        m.add_soft([-a], weight=1, label="not-a")
        m.add_soft([-b], weight=3, label="not-b")
        result = m.solve(strategy)
        assert result.satisfiable
        assert result.cost == 1
        assert result.violated == ["not-a"]

    @pytest.mark.parametrize("strategy", ["linear", "binary"])
    def test_matches_brute_force(self, strategy):
        rng = random.Random(77)
        for _ in range(60):
            n = rng.randint(2, 6)
            hard = random_clauses(rng, n, rng.randint(0, 4))
            soft = [
                (random_clauses(rng, n, 1)[0], rng.randint(1, 5))
                for _ in range(rng.randint(1, 5))
            ]
            expected = _brute_min_cost(n, hard, soft)
            m = MaxSatSolver()
            m.solver.new_vars(n)
            for clause in hard:
                m.add_hard(clause)
            for clause, weight in soft:
                m.add_soft(clause, weight)
            result = m.solve(strategy)
            if expected is None:
                assert not result.satisfiable
            else:
                assert result.cost == expected

    def test_hard_unsat(self):
        m = MaxSatSolver()
        a = m.solver.new_var()
        m.add_hard([a])
        m.add_hard([-a])
        m.add_soft([a])
        assert not m.solve().satisfiable

    def test_zero_cost_optimum(self):
        m = MaxSatSolver()
        a = m.solver.new_var()
        m.add_soft([a], weight=5)
        result = m.solve()
        assert result.cost == 0
        assert result.violated == []

    def test_frozen_after_solve(self):
        m = MaxSatSolver()
        a = m.solver.new_var()
        m.add_soft([a])
        m.solve()
        with pytest.raises(SolverStateError):
            m.add_hard([a])
        with pytest.raises(SolverStateError):
            m.add_soft([-a])

    def test_invalid_weight(self):
        m = MaxSatSolver()
        a = m.solver.new_var()
        with pytest.raises(ValueError):
            m.add_soft([a], weight=0)

    def test_invalid_strategy(self):
        m = MaxSatSolver()
        m.solver.new_var()
        with pytest.raises(ValueError):
            m.solve("magic")

    def test_total_weight(self):
        m = MaxSatSolver()
        a, b = m.solver.new_vars(2)
        m.add_soft([a], 2)
        m.add_soft([b], 3)
        assert m.total_weight == 5


class TestLexicographic:
    def test_priority_order_matters(self):
        # obj1 wants a false; obj2 wants b false; a<->not b forced.
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        s.add_clause([-a, -b])
        result = lexicographic_optimize(
            s,
            [
                LexObjective("first", [PBTerm(1, a)]),
                LexObjective("second", [PBTerm(1, b)]),
            ],
        )
        assert result.optima == {"first": 0, "second": 1}
        assert result.model[b] is True

    def test_zero_cost_objective_frozen(self):
        # Regression: an objective already at 0 must stay at 0.
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        result = lexicographic_optimize(
            s,
            [
                LexObjective("keep_a_off", [PBTerm(5, a)]),
                LexObjective("keep_b_off", [PBTerm(1, b)]),
            ],
        )
        assert result.optima == {"keep_a_off": 0, "keep_b_off": 1}

    def test_unsat(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        result = lexicographic_optimize(s, [LexObjective("o", [PBTerm(1, a)])])
        assert not result.satisfiable

    def test_negative_weight_rejected(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a, -a])
        with pytest.raises(ValueError):
            lexicographic_optimize(
                s, [LexObjective("bad", [PBTerm(-1, a)])]
            )

    def test_empty_objective(self):
        s = Solver()
        s.new_var()
        result = lexicographic_optimize(s, [LexObjective("empty", [])])
        assert result.optima == {"empty": 0}


class TestLinearMin:
    def test_minimize_simple(self):
        s = Solver()
        encoder = IntEncoder(s)
        x = IntVar("x", 0, 100)
        y = IntVar("y", 0, 100)
        encoder.assert_constraint((x + y) >= 30)
        result = minimize_linexpr(s, encoder, 2 * x + 3 * y)
        assert result is not None
        assert result.value == 60  # all weight on the cheap variable
        values = encoder.values(result.model)
        assert values[x] == 30 and values[y] == 0

    def test_minimize_unsat(self):
        s = Solver()
        encoder = IntEncoder(s)
        x = IntVar("x", 0, 5)
        encoder.assert_constraint(x >= 10)
        assert minimize_linexpr(s, encoder, 1 * x) is None

    def test_freeze_persists(self):
        s = Solver()
        encoder = IntEncoder(s)
        x = IntVar("x", 0, 50)
        encoder.assert_constraint(x >= 7)
        result = minimize_linexpr(s, encoder, 1 * x, freeze=True)
        assert result.value == 7
        # After freezing, larger values are unreachable.
        probe = encoder.reify(x >= 8)
        assert not s.solve([probe])

    def test_tolerance_stops_early(self):
        s = Solver()
        encoder = IntEncoder(s)
        x = IntVar("x", 0, 1000)
        encoder.assert_constraint(x >= 100)
        exact = minimize_linexpr(s, encoder, 1 * x, freeze=False)
        s2 = Solver()
        e2 = IntEncoder(s2)
        y = IntVar("y", 0, 1000)
        e2.assert_constraint(y >= 100)
        loose = minimize_linexpr(s2, e2, 1 * y, freeze=False, tolerance=50)
        assert exact.value == 100
        assert 100 <= loose.value <= 150
        assert loose.iterations <= exact.iterations

    def test_expr_value(self):
        s = Solver()
        encoder = IntEncoder(s)
        x = IntVar("x", 0, 10)
        encoder.assert_constraint(x.eq(4))
        s.solve()
        assert expr_value(3 * x + 2, encoder, s.model()) == 14


class TestEnumeration:
    def test_enumerate_all(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        models = list(enumerate_models(s, [a, b]))
        assert len(models) == 3
        assert all(m[a] or m[b] for m in models)

    def test_limit(self):
        s = Solver()
        vs = s.new_vars(4)
        assert count_models(s, vs, limit=5) == 5

    def test_projection_collapses(self):
        s = Solver()
        a, b, c = s.new_vars(3)
        s.add_clause([a])
        assert count_models(s, [a]) == 1  # b, c projected away

    def test_empty_projection(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert count_models(s, []) == 1
        s2 = Solver()
        x = s2.new_var()
        s2.add_clause([x])
        s2.add_clause([-x])
        assert count_models(s2, []) == 0

    def test_equivalence_classes_with_completions(self):
        s = Solver()
        a, b, c = s.new_vars(3)
        s.add_clause([a, b])
        classes = equivalence_classes(s, observed=[a], refinement=[b, c])
        by_sig = {cls.signature[a]: cls.completions for cls in classes}
        assert by_sig == {True: 4, False: 2}

    def test_unsat_yields_no_classes(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        assert equivalence_classes(s, observed=[a]) == []
