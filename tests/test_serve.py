"""Differential parity: the daemon vs direct QueryExecutor execution.

The wire contract (`repro.serve.protocol`) promises that a verb executed
through the daemon returns *byte-identical* result JSON to direct
:class:`~repro.core.executor.QueryExecutor` execution. This suite pins
that over a fuzzed batch of 100+ queries across two knowledge bases
(the full default KB and the tiny conftest-style KB), exercising every
verb, plus unit tests for the protocol layer itself.

The direct side mirrors the daemon's pool discipline exactly: one
incremental executor per ``(kb_name, shape_key(request))``, the same
keying the :class:`~repro.serve.pool.SessionPool` uses, driven in the
same global order. Both sides then walk identical solver trajectories,
so even model *choice* (among equally valid models) must agree.
"""

from __future__ import annotations

import json
import random
from dataclasses import replace

import pytest

from repro.core.design import DesignRequest
from repro.core.executor import QueryExecutor
from repro.core.query import VERBS, Query
from repro.core.session import shape_key
from repro.kb.workload import Workload
from repro.knowledge import default_knowledge_base
from repro.knowledge.casestudy import more_workloads_request
from repro.serve import (
    DaemonConfig,
    InprocDaemon,
    ReasoningDaemon,
    WireError,
    canonical_json,
    decode_envelope,
    result_to_wire,
)
from repro.serve.client import make_envelope
from repro.serve.protocol import envelope_to_query, ok_payload, result_items

SEED = 20260809

#: Per-KB verb mix for the fuzzed batch (sums to 60; two KBs -> 120).
_VERB_COUNTS = {
    "check": 30,
    "diagnose": 12,
    "enumerate": 6,
    "equivalence": 5,
    "explain": 4,
    "synthesize": 3,
}

_DEFAULT_SYSTEMS = ["Sonata", "DCTCP", "Swift", "QUIC", "HPCC"]
_TINY_SYSTEMS = ["StackA", "StackB", "Monitor"]


def _tiny_request(**kwargs) -> DesignRequest:
    defaults = dict(
        workloads=[Workload(name="app", objectives=["packet_processing"])],
    )
    defaults.update(kwargs)
    return DesignRequest(**defaults)


def _default_kb_requests(rng: random.Random) -> list[DesignRequest]:
    """Structural what-ifs over the §5.1 multi-workload request."""
    base = more_workloads_request()
    variants = [base]
    for name in _DEFAULT_SYSTEMS:
        variants.append(replace(base, required_systems=[name]))
        variants.append(replace(base, forbidden_systems=[name]))
    variants += [
        replace(base, required_systems=["QUIC"], forbidden_systems=["DCTCP"]),
        replace(base, fixed_hardware={"SRV-G2-64C-256G": 32}),
        replace(base, budgets={"capex_usd": 2_000_000}),
        replace(base, budgets={"power_w": 200_000}),
        replace(base, budgets={"capex_usd": 100}),  # infeasible probe
        replace(base, context={**base.context, "network_load_ge_40g": False}),
    ]
    rng.shuffle(variants)
    return variants


def _tiny_kb_requests(rng: random.Random) -> list[DesignRequest]:
    variants = [
        _tiny_request(),
        _tiny_request(required_systems=["StackB"]),
        _tiny_request(forbidden_systems=["StackA"]),
        _tiny_request(fixed_hardware={"FancyNIC": 2}),
        _tiny_request(budgets={"capex_usd": 100}),  # infeasible: too tight
        _tiny_request(budgets={"capex_usd": 500_000}),
        _tiny_request(workloads=[
            Workload(name="app", objectives=["teleportation"]),
        ]),
        _tiny_request(workloads=[
            Workload(name="app", objectives=["packet_processing"]),
            Workload(name="probe", objectives=["detect_queue_length"]),
        ]),
        _tiny_request(required_systems=["StackB"],
                      budgets={"power_w": 100_000}),
    ]
    rng.shuffle(variants)
    return variants


def _fuzz_options(rng: random.Random, kb_name: str, verb: str) -> dict:
    if verb == "enumerate":
        return {"limit": rng.choice([1, 2, 3, 4])}
    if verb == "equivalence":
        if kb_name == "default":
            # Unbounded class enumeration over the full KB is far too
            # expensive for a 120-query parity sweep; always bound it.
            return {"class_limit": rng.choice([1, 2, 3]),
                    "completions_limit": rng.choice([2, 4, 8])}
        options = {}
        if rng.random() < 0.7:
            options["class_limit"] = rng.choice([1, 2, 3])
        if rng.random() < 0.7:
            options["completions_limit"] = rng.choice([2, 4, 8])
        return options
    return {}


def _fuzz_batch(rng: random.Random, kb_name: str,
                requests: list[DesignRequest],
                synthesize_requests: list[DesignRequest] | None = None,
                ) -> list[tuple]:
    """(kb_name, verb, request, options) tuples per the verb mix.

    *synthesize_requests* restricts what ``synthesize`` draws from —
    the full-KB cost bisection takes ~30s per feasible request, so the
    default-KB batch synthesizes only the (fast) infeasible probe.
    """
    batch = []
    for verb, count in _VERB_COUNTS.items():
        pool = requests
        if verb == "synthesize" and synthesize_requests is not None:
            pool = synthesize_requests
        for _ in range(count):
            request = rng.choice(pool)
            batch.append(
                (kb_name, verb, request, _fuzz_options(rng, kb_name, verb))
            )
    return batch


class _DirectMirror:
    """Direct executors managed exactly like the daemon's session pool."""

    def __init__(self, kbs: dict):
        self.kbs = kbs
        self._executors: dict[tuple, QueryExecutor] = {}

    def execute(self, kb_name: str, verb: str, request, options: dict):
        key = (kb_name, shape_key(request))
        executor = self._executors.get(key)
        if executor is None:
            executor = QueryExecutor(
                self.kbs[kb_name], incremental=True, preprocess=True
            )
            self._executors[key] = executor
        if verb == "explain":
            outcome = executor.execute(Query("check", request))
            return executor.execute(Query("explain", request), outcome)
        return executor.execute(Query(verb, request, **options))


@pytest.fixture(scope="module")
def kbs():
    # The tiny KB is built inline (the conftest fixture is
    # function-scoped; parity wants one shared instance per module).
    return {"default": default_knowledge_base(), "tiny": _build_tiny_kb()}


def _build_tiny_kb():
    from repro.kb.dsl import prop
    from repro.kb.hardware import Hardware, NICSpec, ServerSpec, SwitchSpec
    from repro.kb.registry import KnowledgeBase
    from repro.kb.system import System
    from repro.logic.ast import TRUE

    kb = KnowledgeBase()
    kb.add_system(System(name="StackA", category="network_stack",
                         solves=["packet_processing"], requires=TRUE))
    kb.add_system(System(name="StackB", category="network_stack",
                         solves=["packet_processing"],
                         requires=prop("nic", "INTERRUPT_POLLING")))
    kb.add_system(System(name="Monitor", category="monitoring",
                         solves=["detect_queue_length"],
                         requires=prop("nic", "NIC_TIMESTAMPS")))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="PlainNIC", rate_gbps=25, power_w=10,
                     cost_usd=200, interrupt_polling=False),
        max_units=8,
    ))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="FancyNIC", rate_gbps=100, power_w=20,
                     cost_usd=900, timestamps=True, interrupt_polling=True),
        max_units=8,
    ))
    kb.add_hardware(Hardware(
        spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=400,
                        cost_usd=5000),
        max_units=8,
    ))
    kb.add_hardware(Hardware(
        spec=SwitchSpec(model="Tor", port_gbps=100, ports=32, memory_mb=16,
                        power_w=500, cost_usd=20000),
        max_units=4,
    ))
    return kb


@pytest.mark.timeout(600)
class TestDifferentialParity:
    def test_daemon_matches_direct_executor_byte_for_byte(self, kbs):
        rng = random.Random(SEED)
        base = more_workloads_request()
        infeasible_probe = replace(base, budgets={"capex_usd": 100})
        batch = (
            _fuzz_batch(rng, "default", _default_kb_requests(rng),
                        synthesize_requests=[infeasible_probe])
            + _fuzz_batch(rng, "tiny", _tiny_kb_requests(rng))
        )
        rng.shuffle(batch)
        assert len(batch) >= 100
        assert {verb for _, verb, _, _ in batch} == set(VERBS)

        mirror = _DirectMirror(kbs)
        config = DaemonConfig(
            port=None, pool_size=64, threads=1, max_inflight=1,
        )
        daemon = ReasoningDaemon(kbs, config)
        mismatches = []
        with InprocDaemon(daemon) as harness:
            for i, (kb_name, verb, request, options) in enumerate(batch):
                envelope = make_envelope(
                    verb, request, kb=kb_name, request_id=i, options=options
                )
                daemon_bytes = harness.query_bytes(envelope)
                payload = json.loads(daemon_bytes)
                assert payload["ok"], (i, verb, payload)
                result = mirror.execute(kb_name, verb, request, options)
                expected = canonical_json(
                    ok_payload(i, verb, result_to_wire(verb, result))
                )
                if daemon_bytes != expected:
                    mismatches.append((i, kb_name, verb))
            pool_stats = daemon.pool.stats_dict()
        assert mismatches == []
        # The pool must have been doing its job (reuse, no eviction) or
        # the trajectory-parity argument above would be vacuous.
        assert pool_stats["evictions"] == 0
        assert pool_stats["hits"] > pool_stats["misses"]

    def test_streaming_frames_carry_the_same_items(self, kbs):
        """stream=true reframes the identical result, item by item."""
        request = more_workloads_request()
        mirror = _DirectMirror(kbs)
        daemon = ReasoningDaemon(
            kbs, DaemonConfig(port=None, pool_size=8, threads=1)
        )
        with InprocDaemon(daemon) as harness:
            for verb, options in [
                ("enumerate", {"limit": 3}),
                ("equivalence", {"class_limit": 2, "completions_limit": 4}),
                ("diagnose", {}),
            ]:
                frames = harness.query(make_envelope(
                    verb, request, request_id=verb, options=options,
                    stream=True,
                ))
                header, items, footer = frames[0], frames[1:-1], frames[-1]
                assert header == {"id": verb, "ok": True, "verb": verb,
                                  "stream": True}
                assert footer == {"done": True, "count": len(items)}
                assert [frame["seq"] for frame in items] == list(
                    range(len(items))
                )
                result = mirror.execute("default", verb, request, options)
                assert [frame["item"] for frame in items] == result_items(
                    verb, result
                )


class TestProtocolUnits:
    def test_canonical_json_is_deterministic(self):
        a = canonical_json({"b": 1, "a": [2, {"z": 0, "y": None}]})
        b = canonical_json({"a": [2, {"y": None, "z": 0}], "b": 1})
        assert a == b
        assert b" " not in a

    def test_decode_envelope_rejects_oversize_and_junk(self):
        with pytest.raises(WireError) as exc:
            decode_envelope(b"x" * 101, max_bytes=100)
        assert exc.value.code == "oversized"
        with pytest.raises(WireError) as exc:
            decode_envelope(b"{not json")
        assert exc.value.code == "bad_request"
        with pytest.raises(WireError) as exc:
            decode_envelope(b"[1,2,3]")
        assert exc.value.code == "bad_request"

    def test_envelope_validation(self):
        request = _tiny_request().to_dict()
        good = {"verb": "check", "kb": "tiny", "request": request}
        kb_name, query, stream = envelope_to_query(good)
        assert (kb_name, query.verb, stream) == ("tiny", "check", False)

        bad_shapes = [
            ({"verb": "conjure", "request": request}, "unknown or missing"),
            ({"verb": "check"}, "'request'"),
            ({"verb": "check", "request": request, "kb": 7}, "'kb'"),
            ({"verb": "check", "request": request, "options": [1]},
             "'options'"),
            ({"verb": "check", "request": request,
              "options": {"frobnicate": 1}}, "unknown options"),
            ({"verb": "enumerate", "request": request,
              "options": {"limit": True}}, "must be an int"),
            ({"verb": "check", "request": request, "stream": True},
             "does not support streaming"),
            ({"verb": "check", "request": {"workloads": "nope"}},
             "DesignRequest"),
        ]
        for envelope, needle in bad_shapes:
            with pytest.raises(WireError) as exc:
                envelope_to_query(envelope)
            assert exc.value.code == "bad_request"
            assert needle in exc.value.message

    def test_wire_error_requires_known_code(self):
        with pytest.raises(ValueError):
            WireError("made_up_code", "nope")

    def test_unknown_kb_is_not_found(self):
        daemon = ReasoningDaemon(
            _build_tiny_kb(), DaemonConfig(port=None, pool_size=2)
        )
        with InprocDaemon(daemon) as harness:
            payload = harness.query(
                make_envelope("check", _tiny_request(), kb="nope")
            )
        assert payload["ok"] is False
        assert payload["error"]["code"] == "not_found"
        assert "default" in payload["error"]["message"]
