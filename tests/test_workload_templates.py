"""Tests for the canonical workload templates against the full KB."""

from __future__ import annotations

import pytest

from repro.core.design import DesignRequest
from repro.core.engine import ReasoningEngine
from repro.knowledge import default_knowledge_base
from repro.knowledge.workloads import (
    ALL_TEMPLATES,
    ml_training,
    storage_backend,
    telemetry_pipeline,
    wan_replication,
    web_frontend,
)

#: A compact hardware shortlist that keeps solver circuits small.
INVENTORY = {
    "SRV-G3-128C-512G": 64,
    "SRV-G2-64C-256G": 64,
    "STD-100G-TS-IP": 256,
    "RDMA-100G-RB": 128,
    "FF-100G-32P": 16,
    "FF-100G-32P-DB": 16,
}


@pytest.fixture(scope="module")
def engine():
    return ReasoningEngine(default_knowledge_base())


class TestTemplates:
    def test_registry_complete(self):
        assert set(ALL_TEMPLATES) == {
            "web_frontend", "ml_training", "storage_backend",
            "wan_replication", "telemetry_pipeline",
        }
        for factory in ALL_TEMPLATES.values():
            workload = factory()
            assert workload.objectives
            assert workload.peak_cores >= 0

    def test_factories_parameterize(self):
        small = ml_training(gpus=8)
        big = ml_training(gpus=128)
        assert big.peak_cores > small.peak_cores
        assert big.peak_gbps > small.peak_gbps
        assert web_frontend(qps_k=10).kflows < web_frontend(qps_k=500).kflows

    def test_fresh_instances(self):
        a = storage_backend()
        b = storage_backend()
        a.objectives.append("extra")
        assert "extra" not in b.objectives


class TestTemplatesSolve:
    def test_web_frontend_synthesizes(self, engine):
        outcome = engine.synthesize(DesignRequest(
            workloads=[web_frontend(qps_k=50)],
            context={"datacenter_fabric": True},
            inventory=dict(INVENTORY),
        ))
        assert outcome.feasible
        categories = {
            engine.kb.system(s).category for s in outcome.solution.systems
        }
        assert "load_balancer" in categories
        assert "firewall" in categories

    def test_wan_replication_needs_annulus_context(self, engine):
        request = DesignRequest(
            workloads=[wan_replication()],
            context={
                "datacenter_fabric": True,
                "competing_wan_dc_traffic": True,
                "wan_egress_present": True,
            },
            inventory={**INVENTORY, "FF-100G-32P": 16},
        )
        outcome = engine.synthesize(request)
        assert outcome.feasible
        # wan_dc_bandwidth_sharing is solved by Annulus or BwE only.
        assert outcome.solution.uses("Annulus") or outcome.solution.uses("BwE")

    def test_telemetry_pipeline(self, engine):
        outcome = engine.synthesize(DesignRequest(
            workloads=[telemetry_pipeline()],
            context={"datacenter_fabric": True},
            inventory=dict(INVENTORY),
        ))
        assert outcome.feasible
        solved = {
            objective
            for s in outcome.solution.systems
            for objective in engine.kb.system(s).solves
        }
        assert {"flow_telemetry", "capture_delays"} <= solved

    def test_combined_workloads_share_infrastructure(self, engine):
        single = engine.synthesize(DesignRequest(
            workloads=[web_frontend(qps_k=20)],
            context={"datacenter_fabric": True},
            inventory=dict(INVENTORY),
            optimize=["capex_usd"],
        ))
        combined = engine.synthesize(DesignRequest(
            workloads=[web_frontend(qps_k=20), telemetry_pipeline()],
            context={"datacenter_fabric": True},
            inventory=dict(INVENTORY),
            optimize=["capex_usd"],
        ))
        assert single.feasible and combined.feasible
        # Adding a workload costs more, but less than double (sharing).
        assert combined.solution.cost_usd > single.solution.cost_usd
        assert combined.solution.cost_usd < 2.5 * single.solution.cost_usd
