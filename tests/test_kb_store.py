"""FactStore backend contract + sqlite durability/isolation.

The KB is logically a fold over an append-only fact log (see
``repro/kb/store/base.py``). Every backend must round-trip the same
(seq, op, kind, name, payload) sequence; sqlite additionally promises
crash recovery (reopen mid-log resumes at the committed seq) and
snapshot isolation for concurrent readers of the same file.
"""

from __future__ import annotations

import threading

import pytest

from repro.kb.hardware import Hardware, NICSpec, ServerSpec, SwitchSpec
from repro.kb.ordering import Ordering
from repro.kb.registry import KnowledgeBase
from repro.kb.rules import Rule
from repro.kb.store import (
    FACT_KINDS,
    FACT_OPS,
    KVFactStore,
    MemoryFactStore,
    SqliteFactStore,
)
from repro.kb.system import System
from repro.logic.ast import TRUE

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(params=["memory", "sqlite", "kv"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryFactStore()
    elif request.param == "kv":
        yield KVFactStore()
    else:
        backend = SqliteFactStore(str(tmp_path / "facts.sqlite"))
        yield backend
        backend.close()


def _populated_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_system(System(name="StackA", category="network_stack",
                         solves=["packet_processing"], requires=TRUE))
    kb.add_system(System(name="StackB", category="network_stack",
                         solves=["packet_processing"], requires=TRUE))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="NIC", rate_gbps=25, power_w=10, cost_usd=200),
        max_units=4,
    ))
    kb.add_hardware(Hardware(
        spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=400,
                        cost_usd=5000),
        max_units=4,
    ))
    kb.add_hardware(Hardware(
        spec=SwitchSpec(model="Tor", port_gbps=100, ports=32, memory_mb=16,
                        power_w=500, cost_usd=20000),
        max_units=2,
    ))
    kb.add_rule(Rule(name="always", formula=TRUE))
    kb.add_ordering(Ordering(dimension="speed", better="StackA",
                             worse="StackB", source="paper"))
    return kb


class TestBackendContract:
    def test_append_scan_roundtrip(self, store):
        facts = [
            ("upsert", "system", "S", {"name": "S"}),
            ("upsert", "hardware", "H", {"kind": "nic"}),
            ("upsert", "rule", "R", {"name": "R"}),
            ("add_ordering", "ordering", "speed", {"better": "a"}),
            ("remove", "system", "S", None),
            ("set_orderings", "ordering", "speed", []),
        ]
        for op, kind, name, payload in facts:
            store.append(op, kind, name, payload)
        replayed = list(store.scan())
        assert [f.seq for f in replayed] == list(range(1, len(facts) + 1))
        assert [(f.op, f.kind, f.name, f.payload) for f in replayed] == facts
        assert store.latest_seq == len(facts)

    def test_scan_window(self, store):
        for i in range(5):
            store.append("upsert", "system", f"s{i}", {})
        assert [f.name for f in store.scan(after=2)] == ["s2", "s3", "s4"]
        assert [f.name for f in store.scan(after=1, upto=3)] == ["s1", "s2"]
        assert list(store.scan(after=5)) == []

    def test_invalid_facts_rejected(self, store):
        with pytest.raises(ValueError, match="unknown fact op"):
            store.append("mangle", "system", "x")
        with pytest.raises(ValueError, match="unknown fact kind"):
            store.append("upsert", "gadget", "x")
        with pytest.raises(ValueError, match="name"):
            store.append("upsert", "system", "")
        assert store.latest_seq == 0

    def test_kb_snapshot_roundtrips_every_entity_kind(self, store):
        """attach(snapshot) -> from_store reproduces the exact KB."""
        kb = _populated_kb()
        kb.attach_store(store, snapshot=True)
        rebuilt = KnowledgeBase.from_store(store)
        assert rebuilt.fingerprint() == kb.fingerprint()
        assert set(rebuilt.systems) == set(kb.systems)
        assert set(rebuilt.hardware) == set(kb.hardware)
        assert set(rebuilt.rules) == set(kb.rules)
        assert rebuilt.dimensions() == kb.dimensions()

    def test_writethrough_mutations_replay(self, store):
        kb = _populated_kb()
        kb.attach_store(store, snapshot=True)
        kb.add_rule(Rule(name="later", formula=TRUE))
        kb.remove_ordering("StackA", "StackB", "speed")
        kb.remove_system("StackB")
        rebuilt = KnowledgeBase.from_store(store)
        assert rebuilt.fingerprint() == kb.fingerprint()
        assert "StackB" not in rebuilt.systems
        assert "later" in rebuilt.rules

    def test_snapshot_isolation_under_interleaved_appends(self, store):
        for i in range(3):
            store.append("upsert", "system", f"s{i}", {})
        scan = store.scan()
        first = next(scan)
        # Appends racing the scan are invisible to it.
        store.append("upsert", "system", "late", {})
        names = [first.name] + [f.name for f in scan]
        assert names == ["s0", "s1", "s2"]
        assert store.latest_seq == 4


class TestSqliteDurability:
    def test_reopen_mid_log_resumes_at_committed_seq(self, tmp_path):
        """Crash recovery: every append commits; reopen loses nothing."""
        path = str(tmp_path / "facts.sqlite")
        writer = SqliteFactStore(path)
        for i in range(4):
            writer.append("upsert", "system", f"s{i}", {"i": i})
        # Simulate a crash: drop the handle without any explicit
        # checkpoint/flush beyond what append itself does.
        writer.close()
        reopened = SqliteFactStore(path)
        assert reopened.latest_seq == 4
        fact = reopened.append("upsert", "system", "s4", {"i": 4})
        assert fact.seq == 5
        assert [f.name for f in reopened.scan()] == [
            "s0", "s1", "s2", "s3", "s4"
        ]
        reopened.close()

    def test_concurrent_reader_sees_a_snapshot(self, tmp_path):
        """A second connection scanning mid-write sees a stable prefix."""
        path = str(tmp_path / "facts.sqlite")
        writer = SqliteFactStore(path)
        for i in range(10):
            writer.append("upsert", "system", f"s{i}", None)
        reader = SqliteFactStore(path)
        bound = reader.latest_seq
        assert bound == 10
        scan = reader.scan()
        stop = threading.Event()

        def pound():
            i = 10
            while not stop.is_set():
                writer.append("upsert", "system", f"s{i}", None)
                i += 1

        thread = threading.Thread(target=pound)
        thread.start()
        try:
            names = [f.name for f in scan]
        finally:
            stop.set()
            thread.join()
        assert names == [f"s{i}" for i in range(bound)]
        assert writer.latest_seq > bound
        writer.close()
        reader.close()

    def test_kb_replay_from_disk(self, tmp_path):
        """End-to-end: snapshot to disk, mutate, reopen elsewhere."""
        path = str(tmp_path / "kb.sqlite")
        kb = _populated_kb()
        kb.attach_store(SqliteFactStore(path), snapshot=True)
        kb.upsert_hardware(Hardware(
            spec=NICSpec(model="NIC", rate_gbps=50, power_w=12, cost_usd=300),
            max_units=4,
        ))
        kb.detach_store().close()
        rebuilt = KnowledgeBase.from_store(SqliteFactStore(path))
        assert rebuilt.fingerprint() == kb.fingerprint()
        assert rebuilt.hardware["NIC"].spec.rate_gbps == 50


class TestFactModel:
    def test_fact_to_op_matches_wire_shape(self):
        fact_with = MemoryFactStore().append(
            "upsert", "system", "S", {"name": "S"}
        )
        assert fact_with.to_op() == {
            "op": "upsert", "entity": "system", "name": "S",
            "payload": {"name": "S"},
        }
        fact_without = MemoryFactStore().append("remove", "rule", "R")
        assert fact_without.to_op() == {
            "op": "remove", "entity": "rule", "name": "R",
        }

    def test_vocabulary_constants(self):
        assert set(FACT_OPS) == {
            "upsert", "remove", "add_ordering", "remove_ordering",
            "set_orderings",
        }
        assert set(FACT_KINDS) == {"system", "hardware", "rule", "ordering"}
