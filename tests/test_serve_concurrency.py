"""Daemon behaviour under concurrency: isolation, bounds, shedding.

32+ concurrent clients interleave queries against two small KBs that
answer the *same* request differently, so any cross-session state bleed
(a warm session serving the wrong KB or shape) flips a feasibility
verdict and fails loudly. Alongside isolation, these tests pin the
operational envelope: the pool stays bounded, rate-limited and shed
requests get structured errors (never hangs), and the admission gauges
return to zero when the storm passes.

Every test carries a ``timeout`` marker (pytest-timeout in CI, the
conftest SIGALRM fallback locally) so a daemon deadlock fails fast.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.design import DesignRequest
from repro.kb.dsl import prop
from repro.kb.hardware import Hardware, NICSpec, ServerSpec
from repro.kb.registry import KnowledgeBase
from repro.kb.system import System
from repro.kb.workload import Workload
from repro.knowledge import default_knowledge_base
from repro.logic.ast import TRUE
from repro.serve import DaemonConfig, InprocDaemon, ReasoningDaemon
from repro.serve.client import make_envelope

CLIENTS = 32
QUERIES_PER_CLIENT = 6


def _kb(feasible: bool) -> KnowledgeBase:
    """A tiny KB where the standard request is (in)feasible by design.

    Both KBs expose a ``packet_processing`` stack; only the feasible one
    owns a NIC satisfying the stack's requirement. The same request thus
    checks feasible on one KB and infeasible on the other — a bled
    session is immediately visible as a flipped verdict.
    """
    kb = KnowledgeBase()
    kb.add_system(System(
        name="Stack",
        category="network_stack",
        solves=["packet_processing"],
        requires=TRUE if feasible else prop("nic", "INTERRUPT_POLLING"),
    ))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="NIC", rate_gbps=25, power_w=10, cost_usd=200,
                     interrupt_polling=False),
        max_units=4,
    ))
    kb.add_hardware(Hardware(
        spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=400,
                        cost_usd=5000),
        max_units=4,
    ))
    return kb


def _request(workload: str) -> DesignRequest:
    # Distinct workload names produce distinct shape keys, so clients
    # interleaving them force the pool to juggle several session shapes
    # per KB rather than one hot key.
    return DesignRequest(workloads=[
        Workload(name=workload, objectives=["packet_processing"]),
    ])


@pytest.mark.timeout(120)
class TestConcurrentIsolation:
    def test_32_clients_interleaved_kbs_no_state_bleed(self):
        kbs = {"feasible": _kb(True), "infeasible": _kb(False)}
        config = DaemonConfig(
            port=None, pool_size=4, threads=8, max_inflight=8,
            queue_limit=CLIENTS * QUERIES_PER_CLIENT,
        )
        daemon = ReasoningDaemon(kbs, config)
        failures: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(CLIENTS)

        def client(n: int) -> None:
            barrier.wait()
            for i in range(QUERIES_PER_CLIENT):
                kb_name = ("feasible", "infeasible")[(n + i) % 2]
                workload = f"wl{(n + i) % 3}"
                request_id = f"c{n}:{i}"
                payload = harness.query(
                    make_envelope("check", _request(workload), kb=kb_name,
                                  request_id=request_id, client=f"c{n}"),
                    client=f"c{n}",
                )
                expected = kb_name == "feasible"
                if (
                    not payload.get("ok")
                    or payload.get("id") != request_id
                    or payload["result"]["feasible"] is not expected
                ):
                    with lock:
                        failures.append(f"{request_id}: {payload}")

        with InprocDaemon(daemon) as harness:
            threads = [
                threading.Thread(target=client, args=(n,), daemon=True)
                for n in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=90)
                assert not thread.is_alive(), "client thread hung"
            stats = daemon.pool.stats_dict()
            inflight = daemon.admission.inflight

        assert failures == []
        # Live sessions never exceed the documented bound.
        assert stats["size"] <= config.pool_size + config.max_inflight
        assert stats["idle"] <= config.pool_size
        assert stats["hits"] > 0
        assert inflight == 0

    def test_pool_stays_bounded_under_shape_churn(self):
        """Many distinct shapes cannot grow the pool past its cap."""
        daemon = ReasoningDaemon(
            {"feasible": _kb(True)},
            DaemonConfig(port=None, pool_size=2, threads=2, max_inflight=2,
                         queue_limit=64),
        )
        with InprocDaemon(daemon) as harness:
            for i in range(12):
                payload = harness.query(make_envelope(
                    "check", _request(f"shape{i}"), kb="feasible",
                ))
                assert payload["ok"], payload
            stats = daemon.pool.stats_dict()
        assert stats["idle"] <= 2
        assert stats["size"] <= 4
        assert stats["evictions"] + stats["discarded_overflow"] > 0


@pytest.mark.timeout(120)
class TestOverloadBehaviour:
    def test_rate_limited_clients_get_structured_errors(self):
        daemon = ReasoningDaemon(
            {"feasible": _kb(True)},
            DaemonConfig(port=None, pool_size=2, threads=2, rate=1.0,
                         burst=2),
        )
        with InprocDaemon(daemon) as harness:
            codes = []
            for i in range(6):
                payload = harness.query(make_envelope(
                    "check", _request("wl"), kb="feasible",
                    request_id=i, client="greedy",
                ))
                codes.append(
                    "ok" if payload["ok"] else payload["error"]["code"]
                )
            # A different client owns a different bucket.
            other = harness.query(make_envelope(
                "check", _request("wl"), kb="feasible", client="patient",
            ))
        assert codes[0] == "ok"
        assert codes.count("rate_limited") >= 1
        assert set(codes) <= {"ok", "rate_limited"}
        assert other["ok"], other

    def test_burst_beyond_queue_limit_is_shed_not_hung(self):
        # One solve slot, one queue slot: a 32-request burst against the
        # full KB (whose first compile holds the slot for ~200ms) must
        # shed the overflow with structured `overloaded` errors while
        # every admitted request still completes.
        daemon = ReasoningDaemon(
            default_knowledge_base(),
            DaemonConfig(port=None, pool_size=2, threads=1, max_inflight=1,
                         queue_limit=1),
        )
        from repro.knowledge.casestudy import more_workloads_request

        request = more_workloads_request()
        with InprocDaemon(daemon) as harness:
            futures = [
                harness.submit(daemon.handle(
                    make_envelope("check", request, request_id=i,
                                  client=f"c{i}")
                ))
                for i in range(32)
            ]
            replies = [future.result(timeout=60) for future in futures]
            payloads = [reply.payload for reply in replies]
            for _ in range(50):
                if daemon.admission.inflight == 0:
                    break
                time.sleep(0.02)
            inflight = daemon.admission.inflight
            depth = daemon.admission.queue_depth

        codes = [
            "ok" if payload["ok"] else payload["error"]["code"]
            for payload in payloads
        ]
        assert len(codes) == 32
        assert set(codes) <= {"ok", "overloaded"}
        assert codes.count("ok") >= 1
        assert codes.count("overloaded") >= 1
        assert inflight == 0
        assert depth == 0
        shed = daemon.metrics.as_dict()["counters"].get("requests.shed", 0)
        assert shed == codes.count("overloaded")
