"""Tests for DIMACS I/O and clause-level preprocessing."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import Solver, parse_dimacs, simplify_clauses, write_dimacs
from repro.sat.dimacs import DimacsFormatError, read_dimacs
from repro.sat.simplify import propagate_units, remove_subsumed, subsumes
from tests.conftest import brute_force_sat, random_clauses


class TestDimacs:
    def test_roundtrip(self):
        clauses = [[1, -2, 3], [-1], [2, 3]]
        text = write_dimacs(3, clauses, comment="test instance")
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 3
        assert parsed == clauses

    def test_comment_lines_ignored(self):
        text = "c hello\nc world\np cnf 2 1\n1 -2 0\n"
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 2 and clauses == [[1, -2]]

    def test_clause_spanning_lines(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        _, clauses = parse_dimacs(text)
        assert clauses == [[1, 2, 3]]

    def test_missing_final_zero_tolerated(self):
        text = "p cnf 2 1\n1 -2\n"
        _, clauses = parse_dimacs(text)
        assert clauses == [[1, -2]]

    def test_missing_header_rejected(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("1 2 0\n")

    def test_bad_header_rejected(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p cnf two 1\n1 0\n")
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p sat 2 1\n1 0\n")

    def test_literal_out_of_range_rejected(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p cnf 2 1\n5 0\n")

    def test_non_integer_literal_rejected(self):
        with pytest.raises(DimacsFormatError):
            parse_dimacs("p cnf 2 1\nx 0\n")

    def test_read_from_file(self, tmp_path):
        path = tmp_path / "f.cnf"
        path.write_text(write_dimacs(2, [[1], [2]]))
        num_vars, clauses = read_dimacs(path)
        assert num_vars == 2 and len(clauses) == 2

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_roundtrip_property(self, data):
        n = data.draw(st.integers(1, 6))
        clauses = data.draw(st.lists(
            st.lists(
                st.integers(1, n).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1, max_size=4,
            ),
            max_size=10,
        ))
        _, parsed = parse_dimacs(write_dimacs(n, clauses))
        assert parsed == clauses


class TestUnitPropagation:
    def test_chain(self):
        clauses = [[1], [-1, 2], [-2, 3]]
        residual, assign, contradiction = propagate_units(clauses)
        assert not contradiction
        assert assign == {1: True, 2: True, 3: True}
        assert residual == []

    def test_contradiction(self):
        _, _, contradiction = propagate_units([[1], [-1]])
        assert contradiction

    def test_residual_untouched(self):
        clauses = [[1], [2, 3], [-1, 2, 3]]
        residual, assign, _ = propagate_units(clauses)
        assert assign == {1: True}
        # Propagation strips falsified literals but does not deduplicate
        # (that is simplify_clauses' job).
        assert residual == [[2, 3], [2, 3]]

    def test_initial_assignment_respected(self):
        residual, assign, contradiction = propagate_units(
            [[1, 2]], assignment={1: False}
        )
        assert not contradiction
        assert assign[2] is True


class TestSubsumption:
    def test_subsumes(self):
        assert subsumes([1], [1, 2])
        assert subsumes([1, 2], [1, 2])
        assert not subsumes([1, 3], [1, 2])
        assert not subsumes([-1], [1, 2])

    def test_remove_subsumed(self):
        kept, removed = remove_subsumed([[1, 2, 3], [1, 2], [4]])
        assert removed == 1
        assert sorted(map(sorted, kept)) == [[1, 2], [4]]


class TestSimplify:
    def test_full_pipeline(self):
        result = simplify_clauses([
            [1, -1, 2],     # tautology
            [3],            # unit
            [-3, 4],        # propagates to unit 4
            [4, 5],         # satisfied by forced 4
            [5, 6],
            [5, 6, 7],      # subsumed
            [6, 5],         # duplicate (as a set)
        ])
        assert not result.contradiction
        assert result.tautologies_removed == 1
        assert set(result.forced) == {3, 4}
        assert sorted(map(sorted, result.clauses)) == [[5, 6]]

    def test_contradiction_detected(self):
        result = simplify_clauses([[1], [-1, 2], [-2]])
        assert result.contradiction

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_equisatisfiable_property(self, data):
        n = data.draw(st.integers(1, 6))
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        clauses = random_clauses(rng, n, data.draw(st.integers(0, 20)))
        result = simplify_clauses(clauses)
        original = brute_force_sat(n, clauses)
        if result.contradiction:
            assert original is False
        else:
            # Simplified + forced literals must match the original verdict.
            solver = Solver()
            solver.new_vars(n)
            for lit in result.forced:
                solver.add_clause([lit])
            for clause in result.clauses:
                solver.add_clause(clause)
            assert solver.solve() == original
