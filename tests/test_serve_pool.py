"""SessionPool accounting under KB-fingerprint churn and shape churn.

Regression suite for the eviction-accounting bug where a KB mutation
left stale-fingerprint sessions squatting in the pool: since the pool
key embeds ``kb.fingerprint()``, a mutated KB makes every idle session
unreachable, and the old checkin policy (discard the *incoming* session
when full) meant those unreachable sessions were never displaced — the
pool filled with dead weight and the hit rate pinned to zero.

The fixed policy: checkin evicts the *oldest* idle session to make room
(counted in ``evictions``), and checkout purges idle sessions whose
fingerprint no longer matches the KB (counted in ``evictions`` and
``stale_purged``).
"""

from __future__ import annotations

import pytest

from repro.core.design import DesignRequest
from repro.core.query import Query
from repro.kb.hardware import Hardware, NICSpec, ServerSpec
from repro.kb.registry import KnowledgeBase
from repro.kb.rules import Rule
from repro.kb.system import System
from repro.kb.workload import Workload
from repro.logic.ast import TRUE
from repro.serve.pool import SessionPool

pytestmark = pytest.mark.timeout(120)


def _kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_system(System(
        name="Stack", category="network_stack",
        solves=["packet_processing"], requires=TRUE,
    ))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="NIC", rate_gbps=25, power_w=10, cost_usd=200),
        max_units=4,
    ))
    kb.add_hardware(Hardware(
        spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=400,
                        cost_usd=5000),
        max_units=4,
    ))
    return kb


def _query(shape: str = "app") -> Query:
    return Query("check", DesignRequest(workloads=[
        Workload(name=shape, objectives=["packet_processing"]),
    ]))


def _roundtrip(pool: SessionPool, kb: KnowledgeBase, query: Query,
               kb_name: str = "default"):
    pooled = pool.checkout(kb_name, kb, query)
    result = pooled.execute(query)
    pool.checkin(pooled)
    return result


class TestFingerprintChurn:
    def test_stale_sessions_never_outlive_the_lru_bound(self):
        """Mutating the KB between requests cannot wedge the pool."""
        kb = _kb()
        pool = SessionPool(max_sessions=2)
        query = _query()
        for i in range(6):
            # Every mutation changes the fingerprint, stranding any
            # sessions checked in under the previous key.
            kb.add_rule(Rule(name=f"churn_{i}", formula=TRUE))
            assert _roundtrip(pool, kb, query).feasible
        stats = pool.stats_dict()
        assert stats["idle"] <= 2
        assert stats["size"] <= 2
        # Only live-fingerprint sessions remain addressable.
        current = kb.fingerprint()
        with pool._lock:
            assert all(key[1] == current for key in pool._idle)

    def test_eviction_counters_match_the_churn(self):
        kb = _kb()
        pool = SessionPool(max_sessions=2)
        query = _query()
        rounds = 5
        for i in range(rounds):
            _roundtrip(pool, kb, query)
            kb.add_rule(Rule(name=f"churn_{i}", formula=TRUE))
        # One more request against the final fingerprint: its checkout
        # purges the last stale session.
        _roundtrip(pool, kb, query)
        stats = pool.stats_dict()
        # Every round misses (the fingerprint changed under it), and
        # every stranded session is purged exactly once.
        assert stats["misses"] == rounds + 1
        assert stats["hits"] == 0
        assert stats["stale_purged"] == rounds
        assert stats["evictions"] == stats["stale_purged"]
        assert stats["discarded_overflow"] == 0
        # Accounting identity: everything created was either evicted or
        # is still idle.
        assert stats["misses"] == stats["evictions"] + stats["idle"]

    def test_pool_recovers_hits_after_churn_stops(self):
        """The regression: stale squatters used to pin the hit rate at 0."""
        kb = _kb()
        pool = SessionPool(max_sessions=2)
        query = _query()
        for i in range(3):
            _roundtrip(pool, kb, query)
            kb.add_rule(Rule(name=f"churn_{i}", formula=TRUE))
        # Churn stops; the very next repeat request must be a hit.
        _roundtrip(pool, kb, query)
        assert _roundtrip(pool, kb, query).feasible
        stats = pool.stats_dict()
        assert stats["hits"] >= 1

    def test_churn_on_one_kb_leaves_other_kbs_sessions_alone(self):
        kb_a, kb_b = _kb(), _kb()
        kb_b.add_rule(Rule(name="distinct", formula=TRUE))
        pool = SessionPool(max_sessions=4)
        query = _query()
        _roundtrip(pool, kb_a, query, kb_name="a")
        _roundtrip(pool, kb_b, query, kb_name="b")
        kb_a.add_rule(Rule(name="churn", formula=TRUE))
        _roundtrip(pool, kb_a, query, kb_name="a")
        stats = pool.stats_dict()
        assert stats["stale_purged"] == 1  # only kb_a's stranded session
        # kb_b's warm session must still hit.
        _roundtrip(pool, kb_b, query, kb_name="b")
        assert pool.stats_dict()["hits"] == 1


class TestCheckinEviction:
    def test_full_pool_evicts_oldest_not_incoming(self):
        kb = _kb()
        pool = SessionPool(max_sessions=1)
        old_query, new_query = _query("old"), _query("new")
        _roundtrip(pool, kb, old_query)
        _roundtrip(pool, kb, new_query)
        stats = pool.stats_dict()
        # The newest session is retained; the oldest was evicted.
        assert stats["evictions"] == 1
        assert stats["discarded_overflow"] == 0
        _roundtrip(pool, kb, new_query)
        assert pool.stats_dict()["hits"] == 1

    def test_zero_capacity_pool_discards_incoming(self):
        kb = _kb()
        pool = SessionPool(max_sessions=0)
        _roundtrip(pool, kb, _query())
        stats = pool.stats_dict()
        assert stats["idle"] == 0
        assert stats["discarded_overflow"] == 1
        assert stats["evictions"] == 0
