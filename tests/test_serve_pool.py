"""SessionPool accounting under KB-fingerprint churn and shape churn.

Regression suite for two pool policies:

1. Checkin evicts the *oldest* idle session when the pool is full
   (counted in ``evictions``), never the incoming one — the historical
   bug let unreachable sessions squat and pin the hit rate to zero.
2. Checkout *re-keys* idle sessions whose scoped fingerprint a KB delta
   changed (counted in ``rekeyed``) instead of discarding them: the
   session absorbs the delta on its next view (adopt / guard-group
   patch / full rebase), so KB churn no longer cold-starts the pool.
   ``stale_purged`` stays for legacy accounting and is expected to be 0
   under delta-journaled mutation.
"""

from __future__ import annotations

import pytest

from repro.core.design import DesignRequest
from repro.core.query import Query
from repro.kb.hardware import Hardware, NICSpec, ServerSpec
from repro.kb.registry import KnowledgeBase
from repro.kb.rules import Rule
from repro.kb.system import System
from repro.kb.workload import Workload
from repro.logic.ast import TRUE
from repro.serve.pool import SessionPool

pytestmark = pytest.mark.timeout(120)


def _kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_system(System(
        name="Stack", category="network_stack",
        solves=["packet_processing"], requires=TRUE,
    ))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="NIC", rate_gbps=25, power_w=10, cost_usd=200),
        max_units=4,
    ))
    kb.add_hardware(Hardware(
        spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=400,
                        cost_usd=5000),
        max_units=4,
    ))
    return kb


def _query(shape: str = "app") -> Query:
    return Query("check", DesignRequest(workloads=[
        Workload(name=shape, objectives=["packet_processing"]),
    ]))


def _roundtrip(pool: SessionPool, kb: KnowledgeBase, query: Query,
               kb_name: str = "default"):
    pooled = pool.checkout(kb_name, kb, query)
    result = pooled.execute(query)
    pool.checkin(pooled)
    return result


class TestFingerprintChurn:
    def test_stale_sessions_never_outlive_the_lru_bound(self):
        """Mutating the KB between requests cannot wedge the pool."""
        kb = _kb()
        pool = SessionPool(max_sessions=2)
        query = _query()
        for i in range(6):
            # Every mutation changes the scoped fingerprint; checkout
            # re-keys the idle session, which absorbs the delta.
            kb.add_rule(Rule(name=f"churn_{i}", formula=TRUE))
            assert _roundtrip(pool, kb, query).feasible
        stats = pool.stats_dict()
        assert stats["idle"] <= 2
        assert stats["size"] <= 2
        # Every idle key is addressable under the *current* KB state.
        current = SessionPool.key_for("default", kb, query)[1]
        with pool._lock:
            assert all(key[1] == current for key in pool._idle)

    def test_churn_rekeys_instead_of_purging(self):
        """A KB delta keeps warm sessions: re-key + in-place absorb."""
        kb = _kb()
        pool = SessionPool(max_sessions=2)
        query = _query()
        rounds = 5
        _roundtrip(pool, kb, query)
        for i in range(rounds):
            kb.add_rule(Rule(name=f"churn_{i}", formula=TRUE))
            assert _roundtrip(pool, kb, query).feasible
        stats = pool.stats_dict()
        # One compile total: every later round re-keys the warm session
        # (a pool hit) and the session patches the new rule in place.
        assert stats["misses"] == 1
        assert stats["hits"] == rounds
        assert stats["rekeyed"] == rounds
        assert stats["stale_purged"] == 0
        assert stats["evictions"] == 0
        assert stats["discarded_overflow"] == 0

    def test_rekeyed_session_absorbs_instead_of_recompiling(self):
        kb = _kb()
        pool = SessionPool(max_sessions=2)
        query = _query()
        pooled = pool.checkout("default", kb, query)
        pooled.execute(query)
        pool.checkin(pooled)
        kb.add_rule(Rule(name="churn", formula=TRUE))
        pooled = pool.checkout("default", kb, query)
        assert pooled.execute(query).feasible
        stats = pooled.session.stats
        assert stats.compiles == 1
        assert stats.rebases == 0
        assert stats.rebases_patched == 1
        pool.checkin(pooled)

    def test_pool_recovers_hits_after_churn_stops(self):
        """The regression: stale squatters used to pin the hit rate at 0."""
        kb = _kb()
        pool = SessionPool(max_sessions=2)
        query = _query()
        for i in range(3):
            _roundtrip(pool, kb, query)
            kb.add_rule(Rule(name=f"churn_{i}", formula=TRUE))
        # Churn stops; the very next repeat request must be a hit.
        _roundtrip(pool, kb, query)
        assert _roundtrip(pool, kb, query).feasible
        stats = pool.stats_dict()
        assert stats["hits"] >= 1

    def test_churn_on_one_kb_leaves_other_kbs_sessions_alone(self):
        kb_a, kb_b = _kb(), _kb()
        kb_b.add_rule(Rule(name="distinct", formula=TRUE))
        pool = SessionPool(max_sessions=4)
        query = _query()
        _roundtrip(pool, kb_a, query, kb_name="a")
        _roundtrip(pool, kb_b, query, kb_name="b")
        kb_a.add_rule(Rule(name="churn", formula=TRUE))
        _roundtrip(pool, kb_a, query, kb_name="a")
        stats = pool.stats_dict()
        assert stats["rekeyed"] == 1  # only kb_a's session re-keyed
        assert stats["stale_purged"] == 0
        # Both KBs' warm sessions hit.
        assert pool.stats_dict()["hits"] == 1
        _roundtrip(pool, kb_b, query, kb_name="b")
        assert pool.stats_dict()["hits"] == 2


class TestCheckinEviction:
    def test_full_pool_evicts_oldest_not_incoming(self):
        kb = _kb()
        pool = SessionPool(max_sessions=1)
        old_query, new_query = _query("old"), _query("new")
        _roundtrip(pool, kb, old_query)
        _roundtrip(pool, kb, new_query)
        stats = pool.stats_dict()
        # The newest session is retained; the oldest was evicted.
        assert stats["evictions"] == 1
        assert stats["discarded_overflow"] == 0
        _roundtrip(pool, kb, new_query)
        assert pool.stats_dict()["hits"] == 1

    def test_zero_capacity_pool_discards_incoming(self):
        kb = _kb()
        pool = SessionPool(max_sessions=0)
        _roundtrip(pool, kb, _query())
        stats = pool.stats_dict()
        assert stats["idle"] == 0
        assert stats["discarded_overflow"] == 1
        assert stats["evictions"] == 0
