"""Unit tests for the grounding internals (core/compile.py)."""

from __future__ import annotations

import pytest

from repro.core.compile import compile_design
from repro.core.design import DesignRequest
from repro.errors import QueryError, UnknownEntityError
from repro.kb.dsl import ctx, feat, obj, prop, wl
from repro.kb.hardware import Hardware, NICSpec, ServerSpec, SwitchSpec
from repro.kb.registry import KnowledgeBase
from repro.kb.rules import Rule
from repro.kb.system import Feature, System
from repro.kb.workload import Workload
from repro.logic.ast import Implies, Not


def _kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_system(System(
        name="S", category="network_stack", solves=["packet_processing"],
        provides=["net::OVERLAY_ENCAP"],
    ))
    kb.add_system(System(
        name="M", category="monitoring", solves=["telemetry"],
        requires=prop("nic", "NIC_TIMESTAMPS"),
        features=[Feature("deep", requires=ctx("deep_allowed"))],
    ))
    kb.add_hardware(Hardware(spec=NICSpec(
        model="TsNIC", rate_gbps=25, power_w=5, cost_usd=400,
        timestamps=True,
    ), max_units=4))
    kb.add_hardware(Hardware(spec=ServerSpec(
        model="Box", cores=16, mem_gb=64, power_w=200, cost_usd=3_000,
    ), max_units=4))
    kb.add_hardware(Hardware(spec=SwitchSpec(
        model="Sw", port_gbps=100, ports=32, memory_mb=16, power_w=300,
        cost_usd=7_000,
    ), max_units=2))
    return kb


def _request(**kwargs) -> DesignRequest:
    defaults = dict(workloads=[Workload(
        name="w", properties=["short_flows"],
        objectives=["packet_processing"],
    )])
    defaults.update(kwargs)
    return DesignRequest(**defaults)


class TestVariableGrounding:
    def test_sys_vars_allocated_per_candidate(self):
        compiled = compile_design(_kb(), _request())
        assert set(compiled.sys_lits) == {"S", "M"}

    def test_candidate_restriction(self):
        compiled = compile_design(
            _kb(), _request(candidate_systems=["S"])
        )
        assert set(compiled.sys_lits) == {"S"}

    def test_required_system_outside_candidates_is_added(self):
        compiled = compile_design(
            _kb(),
            _request(candidate_systems=["S"], required_systems=["M"]),
        )
        assert "M" in compiled.sys_lits

    def test_hw_bool_tracks_count(self):
        compiled = compile_design(_kb(), _request())
        compiled.assert_guards()
        hw = compiled.hw_bools["TsNIC"]
        count = compiled.hw_counts["TsNIC"]
        assert compiled.solver.solve([hw])
        assert compiled.encoder.value_of(count, compiled.solver.model()) >= 1
        assert compiled.solver.solve([-hw])
        assert compiled.encoder.value_of(count, compiled.solver.model()) == 0

    def test_workload_props_asserted(self):
        compiled = compile_design(_kb(), _request())
        lit = compiled.builder.var_for("wl::w::short_flows")
        assert not compiled.solver.solve([-lit])


class TestClosedWorld:
    def test_unprovided_property_is_false(self):
        kb = _kb()
        kb.add_system(System(
            name="NeedsMagic", category="firewall", solves=["magic"],
            requires=prop("switch", "INT"),  # nothing provides INT here
        ))
        compiled = compile_design(kb, _request(workloads=[Workload(
            name="w", objectives=["packet_processing", "magic"],
        )]))
        assert not compiled.solve()
        assert "require:NeedsMagic" in compiled.core_names() or (
            "objective:magic" in compiled.core_names()
        )

    def test_provided_property_iff_provider_deployed(self):
        kb = _kb()
        kb.add_rule(Rule(
            name="overlay_probe",
            formula=Implies(prop("net", "OVERLAY_ENCAP"), ctx("noticed")),
        ))
        compiled = compile_design(kb, _request(
            context={"noticed": False},
            workloads=[],  # drop cs:need_stack so ¬S stays possible
        ))
        compiled.assert_guards()
        s_lit = compiled.sys_lits["S"]
        # Deploying S raises OVERLAY_ENCAP, which the rule forbids here.
        assert not compiled.solver.solve([s_lit])
        assert compiled.solver.solve([-s_lit])

    def test_unknown_context_defaults_false(self):
        kb = _kb()
        kb.add_system(System(
            name="Gated", category="firewall", solves=["gated"],
            requires=ctx("mystery_flag"),
        ))
        compiled = compile_design(kb, _request(workloads=[Workload(
            name="w", objectives=["packet_processing", "gated"],
        )]))
        assert not compiled.solve()

    def test_undeclared_feature_closed_off(self):
        kb = _kb()
        kb.add_rule(Rule(
            name="feature_probe",
            formula=Implies(feat("Ghost", "mode"), Not(ctx("anything"))),
        ))
        compiled = compile_design(kb, _request())
        lit = compiled.builder.var_for("feat::Ghost::mode")
        assert not compiled.solver.solve([lit])

    def test_undeclared_workload_prop_false(self):
        kb = _kb()
        kb.add_rule(Rule(
            name="wl_probe",
            formula=Implies(wl("w", "nonexistent"), ctx("whatever")),
        ))
        compiled = compile_design(kb, _request())
        lit = compiled.builder.var_for("wl::w::nonexistent")
        assert not compiled.solver.solve([lit])

    def test_obj_vars_defined(self):
        kb = _kb()
        kb.add_rule(Rule(
            name="obj_probe",
            formula=Implies(obj("telemetry"), prop("nic", "NIC_TIMESTAMPS")),
        ))
        compiled = compile_design(kb, _request())
        compiled.assert_guards()
        m_lit = compiled.sys_lits["M"]
        obj_lit = compiled.builder.var_for("obj::telemetry")
        assert not compiled.solver.solve([m_lit, -obj_lit])
        assert not compiled.solver.solve([-m_lit, obj_lit])


class TestGuards:
    def test_selector_names_cover_groups(self):
        compiled = compile_design(_kb(), _request(
            required_systems=["S"],
            budgets={"capex_usd": 100_000},
        ))
        names = set(compiled.selectors)
        assert "require:S" in names
        assert "require:M" in names
        assert "required:S" in names
        assert "objective:packet_processing" in names
        assert "budget:capex_usd" in names
        assert any(n.startswith("cs:") for n in names)

    def test_descriptions_human_readable(self):
        compiled = compile_design(_kb(), _request())
        for name, description in compiled.descriptions.items():
            assert description, f"{name} lacks a description"

    def test_guards_off_means_anything_goes(self):
        compiled = compile_design(_kb(), _request(
            required_systems=["S"], forbidden_systems=["S"],
        ))
        # Without assuming the guards, the formula itself is satisfiable.
        assert compiled.solver.solve()
        assert not compiled.solve()


class TestObjectiveTerms:
    def test_unknown_objective_rejected(self):
        compiled = compile_design(_kb(), _request())
        with pytest.raises(QueryError):
            compiled.objective_terms("nonsense_dimension")

    def test_cost_expr_rejects_non_cost(self):
        compiled = compile_design(_kb(), _request())
        with pytest.raises(QueryError):
            compiled.cost_expr("latency")

    def test_cost_expr_quantized(self):
        compiled = compile_design(_kb(), _request())
        expr = compiled.cost_expr("capex_usd")
        quantum = compiled.COST_QUANTUM["capex_usd"]
        # TsNIC at $400 rounds up to one quantum unit.
        coeffs = {v.name: c for v, c in expr.coeffs.items()}
        assert coeffs["count::TsNIC"] == -(-400 // quantum)

    def test_unknown_budget_kind_rejected(self):
        with pytest.raises(QueryError):
            compile_design(_kb(), _request(budgets={"joy": 10}))

    def test_unknown_hardware_in_request(self):
        with pytest.raises(UnknownEntityError):
            compile_design(_kb(), _request(inventory={"Ghost": 1}))
