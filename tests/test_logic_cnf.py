"""Tests for Tseitin transformation, cardinality, and PB encodings."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ast import (
    FALSE,
    TRUE,
    And,
    AtMost,
    Not,
    Or,
    Var,
)
from repro.logic.cardinality import (
    Totalizer,
    at_least_k,
    at_most_k,
    at_most_one_pairwise,
    exactly_k,
)
from repro.logic.pseudo_boolean import (
    GeneralizedTotalizer,
    PBTerm,
    encode_pb_eq,
    encode_pb_geq,
    encode_pb_leq,
    normalize_pb,
)
from repro.logic.simplify import evaluate, free_vars
from repro.logic.tseitin import ClauseCollector, CnfBuilder
from repro.sat import Solver
from tests.test_logic_ast import formulas


def _models_of(formula, names):
    """All satisfying assignments by brute force."""
    out = []
    for bits in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, bits))
        if evaluate(formula, env):
            out.append(env)
    return out


class TestTseitin:
    @settings(max_examples=150, deadline=None)
    @given(formulas())
    def test_equisatisfiable(self, formula):
        names = sorted(free_vars(formula)) or ["a"]
        brute = bool(_models_of(formula, names))
        solver = Solver()
        builder = CnfBuilder(solver)
        builder.add_formula(formula)
        assert solver.solve() == brute

    @settings(max_examples=100, deadline=None)
    @given(formulas())
    def test_models_satisfy_formula(self, formula):
        names = sorted(free_vars(formula))
        solver = Solver()
        builder = CnfBuilder(solver)
        builder.add_formula(formula)
        if solver.solve():
            assignment = builder.assignment_from_model(solver.model())
            env = {n: assignment.get(n, False) for n in names}
            assert evaluate(formula, env)

    @settings(max_examples=100, deadline=None)
    @given(formulas())
    def test_f_and_not_f_unsat(self, formula):
        solver = Solver()
        builder = CnfBuilder(solver)
        builder.add_formula(formula)
        builder.add_formula(Not(formula))
        assert solver.solve() is False

    def test_cardinality_under_negation_is_sound(self):
        # Regression: reified cardinality must be bidirectional.
        a, b = Var("a"), Var("b")
        solver = Solver()
        builder = CnfBuilder(solver)
        builder.add_formula(Not(AtMost(1, [a, b])))  # => both true
        assert solver.solve()
        env = builder.assignment_from_model(solver.model())
        assert env["a"] and env["b"]

    def test_shared_subformulas_encoded_once(self):
        shared = And(Var("a"), Var("b"))
        formula = Or(shared, Var("c")) & Or(shared, Var("d"))
        collector = ClauseCollector()
        builder = CnfBuilder(collector)
        builder.add_formula(formula)
        single = ClauseCollector()
        b2 = CnfBuilder(single)
        b2.add_formula(Or(shared, Var("c")))
        # Shared node must not double the clause count.
        assert collector.num_vars < 2 * single.num_vars + 4

    def test_var_roundtrip(self):
        solver = Solver()
        builder = CnfBuilder(solver)
        v = builder.var_for("sys::Linux")
        assert builder.var_for("sys::Linux") == v
        assert builder.name_of(v) == "sys::Linux"
        assert builder.name_of(9999) is None

    def test_constants(self):
        solver = Solver()
        builder = CnfBuilder(solver)
        builder.add_formula(TRUE)
        assert solver.solve()
        builder.add_formula(FALSE)
        assert solver.solve() is False

    def test_flat_clause_shortcut(self):
        collector = ClauseCollector()
        builder = CnfBuilder(collector)
        builder.add_formula(Or(Var("a"), Not(Var("b")), Var("c")))
        # One clause, no auxiliary variables beyond the three names.
        assert collector.num_vars == 3
        assert collector.clauses == [[1, -2, 3]]


def _count_models(solver, over):
    count = 0
    while solver.solve():
        model = solver.model()
        count += 1
        solver.add_clause([-v if model[v] else v for v in over])
        if count > 300:
            raise AssertionError("runaway enumeration")
    return count


class TestCardinality:
    @pytest.mark.parametrize("method", ["pairwise", "seq", "totalizer"])
    @pytest.mark.parametrize("n,k", [(1, 0), (3, 1), (4, 2), (5, 3), (5, 5), (4, 0)])
    def test_at_most_k_model_count(self, method, n, k):
        solver = Solver()
        lits = solver.new_vars(n)
        for clause in at_most_k(lits, k, solver.new_var, method):
            solver.add_clause(clause)
        expected = sum(
            1
            for bits in itertools.product([0, 1], repeat=n)
            if sum(bits) <= k
        )
        assert _count_models(solver, lits) == expected

    @pytest.mark.parametrize("method", ["seq", "totalizer"])
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 4), (3, 3)])
    def test_at_least_k_model_count(self, method, n, k):
        solver = Solver()
        lits = solver.new_vars(n)
        for clause in at_least_k(lits, k, solver.new_var, method):
            solver.add_clause(clause)
        expected = sum(
            1
            for bits in itertools.product([0, 1], repeat=n)
            if sum(bits) >= k
        )
        assert _count_models(solver, lits) == expected

    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 0), (5, 5)])
    def test_exactly_k_model_count(self, n, k):
        solver = Solver()
        lits = solver.new_vars(n)
        for clause in exactly_k(lits, k, solver.new_var):
            solver.add_clause(clause)
        import math

        assert _count_models(solver, lits) == math.comb(n, k)

    def test_at_most_one_pairwise_clause_count(self):
        lits = [1, 2, 3, 4]
        assert len(at_most_one_pairwise(lits)) == 6

    def test_bound_edge_cases(self):
        solver = Solver()
        lits = solver.new_vars(3)
        assert at_most_k(lits, 5, solver.new_var) == []
        assert at_most_k(lits, -1, solver.new_var) == [[]]
        assert at_least_k(lits, 0, solver.new_var) == []
        assert at_least_k(lits, 4, solver.new_var) == [[]]

    def test_totalizer_incremental_tightening(self):
        solver = Solver()
        lits = solver.new_vars(5)
        tot = Totalizer(lits, solver.new_var)
        for clause in tot.clauses:
            solver.add_clause(clause)
        for clause in tot.at_most(3):
            solver.add_clause(clause)
        assert solver.solve([lits[0], lits[1], lits[2]])
        assert not solver.solve([lits[0], lits[1], lits[2], lits[3]])
        for clause in tot.at_most(1):
            solver.add_clause(clause)
        assert not solver.solve([lits[0], lits[1]])
        assert solver.solve([lits[0]])


class TestPseudoBoolean:
    def test_normalize_merges_and_flips(self):
        terms = [PBTerm(3, 1), PBTerm(2, 1), PBTerm(-4, 2)]
        norm, bound = normalize_pb(terms, 10)
        as_dict = {t.lit: t.weight for t in norm}
        assert as_dict == {1: 5, -2: 4}
        assert bound == 14

    def test_normalize_opposite_polarity(self):
        terms = [PBTerm(3, 1), PBTerm(5, -1)]
        norm, bound = normalize_pb(terms, 10)
        # 3x + 5(1-x) = 3x + 5 - 5x -> fold min(3,5)=3: 2*(-x) + bound 7
        as_dict = {t.lit: t.weight for t in norm}
        assert as_dict == {-1: 2}
        assert bound == 7

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_pb_encodings_match_semantics(self, data):
        n = data.draw(st.integers(1, 5))
        weights = data.draw(
            st.lists(st.integers(-6, 8), min_size=n, max_size=n)
        )
        polarities = data.draw(
            st.lists(st.sampled_from([1, -1]), min_size=n, max_size=n)
        )
        bound = data.draw(st.integers(-10, 18))
        mode = data.draw(st.sampled_from(["leq", "geq", "eq"]))
        solver = Solver()
        vs = solver.new_vars(n)
        terms = [
            PBTerm(w, p * v) for w, p, v in zip(weights, polarities, vs)
        ]
        encode = {"leq": encode_pb_leq, "geq": encode_pb_geq,
                  "eq": encode_pb_eq}[mode]
        for clause in encode(terms, bound, solver.new_var):
            solver.add_clause(clause)
        for bits in itertools.product([False, True], repeat=n):
            value = sum(
                w
                for w, p, bit in zip(weights, polarities, bits)
                if (bit if p > 0 else not bit)
            )
            want = {"leq": value <= bound, "geq": value >= bound,
                    "eq": value == bound}[mode]
            assumptions = [v if bit else -v for v, bit in zip(vs, bits)]
            assert solver.solve(assumptions) == want

    def test_gte_saturation_bounds_node_width(self):
        rng = random.Random(5)
        terms = [PBTerm(rng.randint(1, 50), i + 1) for i in range(12)]
        clauses: list = []
        gte = GeneralizedTotalizer(
            terms, cap=20, new_var=iter(range(100, 10_000)).__next__,
            clauses=clauses,
        )
        assert all(v <= 20 for v in gte.values())

    def test_zero_weight_terms_dropped(self):
        solver = Solver()
        v = solver.new_var()
        clauses = encode_pb_leq([PBTerm(0, v)], 0, solver.new_var)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve([v])

    def test_invalid_terms_rejected(self):
        with pytest.raises(ValueError):
            PBTerm(1, 0)
        with pytest.raises(TypeError):
            PBTerm(1.5, 1)
