"""Differential fuzzing of the CDCL solver against brute-force enumeration.

The promoted harness: hundreds of seeded random CNFs, solved with and
without assumptions, cross-checked against exhaustive enumeration.
Every SAT answer is validated clause by clause (and against the
assumptions); every UNSAT-under-assumptions answer must come with a
core that is a subset of the assumptions and is itself sufficient for
unsatisfiability.

Instances stay at <= 8 variables so the brute-force oracle is exact;
the solver-vs-reference-DPLL suite covers the larger range.
"""

from __future__ import annotations

import random

import pytest

from repro.sat import Solver
from tests.conftest import brute_force_sat, random_clauses

#: (seed, num_vars, num_clauses, with_assumptions) — 320 instances.
_CASES = [
    (seed, num_vars, num_clauses, with_assumptions)
    for seed in range(40)
    for num_vars, num_clauses in ((4, 10), (6, 18), (8, 26), (8, 34))
    for with_assumptions in (False, True)
][:320]


def _model_satisfies(model: dict[int, bool], clauses) -> bool:
    return all(
        any(model[abs(lit)] == (lit > 0) for lit in clause)
        for clause in clauses
    )


def _random_assumptions(rng: random.Random, num_vars: int) -> list[int]:
    count = rng.randint(1, max(1, num_vars // 2))
    variables = rng.sample(range(1, num_vars + 1), count)
    return [v * rng.choice([1, -1]) for v in variables]


@pytest.mark.parametrize(
    "seed,num_vars,num_clauses,with_assumptions", _CASES
)
def test_differential(seed, num_vars, num_clauses, with_assumptions):
    rng = random.Random((seed, num_vars, num_clauses, with_assumptions).__hash__())
    clauses = random_clauses(rng, num_vars, num_clauses)
    assumptions = (
        _random_assumptions(rng, num_vars) if with_assumptions else []
    )

    solver = Solver()
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    got = solver.solve(assumptions)

    # Oracle: assumptions become unit clauses.
    expected = brute_force_sat(
        num_vars, clauses + [[lit] for lit in assumptions]
    )
    assert got == expected, (
        f"disagreement on seed={seed} n={num_vars} m={num_clauses} "
        f"assumptions={assumptions}"
    )

    if got:
        model = solver.model()
        assert _model_satisfies(model, clauses)
        for lit in assumptions:
            assert model[abs(lit)] == (lit > 0)
    elif assumptions:
        core = solver.unsat_core()
        assert set(core) <= set(assumptions)
        # The core alone must still make the formula unsatisfiable.
        assert not brute_force_sat(
            num_vars, clauses + [[lit] for lit in core]
        )


def test_case_count_meets_floor():
    assert len(_CASES) >= 300


# -- portfolio-vs-sequential equivalence ------------------------------------
#
# The portfolio may only change *when* an answer arrives, never *what*
# it is: every configuration is a sound and complete solver. These cases
# cross-check the interleaved portfolio against both the brute-force
# oracle and the plain sequential solver, and validate SAT models
# clause by clause.

_PORTFOLIO_CASES = [
    (seed, num_vars, num_clauses, with_assumptions)
    for seed in range(10)
    for num_vars, num_clauses in ((4, 10), (6, 18), (8, 26), (8, 34))
    for with_assumptions in (False, True)
]


@pytest.mark.parametrize(
    "seed,num_vars,num_clauses,with_assumptions", _PORTFOLIO_CASES
)
def test_portfolio_matches_sequential(
    seed, num_vars, num_clauses, with_assumptions
):
    from repro.par import default_portfolio, solve_portfolio

    rng = random.Random(
        f"portfolio-{seed}-{num_vars}-{num_clauses}-{with_assumptions}"
    )
    clauses = random_clauses(rng, num_vars, num_clauses)
    assumptions = (
        _random_assumptions(rng, num_vars) if with_assumptions else []
    )

    sequential = Solver()
    sequential.new_vars(num_vars)
    for clause in clauses:
        sequential.add_clause(clause)
    expected = sequential.solve(assumptions)
    oracle = brute_force_sat(
        num_vars, clauses + [[lit] for lit in assumptions]
    )
    assert expected == oracle

    result = solve_portfolio(
        num_vars, clauses, assumptions=assumptions,
        configs=default_portfolio(4, base_seed=seed),
    )
    assert result.satisfiable == expected, (
        f"portfolio disagrees on seed={seed} n={num_vars} m={num_clauses} "
        f"assumptions={assumptions} winner={result.winner}"
    )
    if result.satisfiable:
        assert _model_satisfies(result.model, clauses)
        for lit in assumptions:
            assert result.model[abs(lit)] == (lit > 0)
    elif assumptions:
        assert set(result.core) <= set(assumptions)
        assert not brute_force_sat(
            num_vars, clauses + [[lit] for lit in result.core]
        )


@pytest.mark.parametrize("seed", range(4))
def test_portfolio_process_mode_matches_oracle(seed):
    """jobs=2 races real worker processes; the verdict must not change."""
    from repro.par import default_portfolio, solve_portfolio

    rng = random.Random(f"process-mode-{seed}")
    clauses = random_clauses(rng, 8, 30)
    expected = brute_force_sat(8, clauses)
    result = solve_portfolio(
        8, clauses, configs=default_portfolio(2, base_seed=seed), jobs=2,
    )
    assert result.satisfiable == expected
    assert result.mode == "process"
    if result.satisfiable:
        assert _model_satisfies(result.model, clauses)


def test_incremental_solving_matches_oracle():
    """Clause additions between solve calls stay consistent with the oracle."""
    for seed in range(12):
        rng = random.Random(seed)
        num_vars = 6
        solver = Solver()
        solver.new_vars(num_vars)
        clauses: list[list[int]] = []
        for round_no in range(6):
            for clause in random_clauses(rng, num_vars, 4):
                clauses.append(clause)
                solver.add_clause(clause)
            got = solver.solve()
            expected = brute_force_sat(num_vars, clauses)
            assert got == expected, f"seed={seed} round={round_no}"
            if got:
                assert _model_satisfies(solver.model(), clauses)
            else:
                break
