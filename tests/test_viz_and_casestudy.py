"""Tests for DOT rendering and the case-study request builders."""

from __future__ import annotations

import pytest

from repro.kb.viz import orderings_to_dot
from repro.knowledge import (
    cxl_query_requests,
    default_knowledge_base,
    inference_case_study,
    keep_sonata_requests,
    more_workloads_request,
)
from repro.knowledge.casestudy import CASE_STUDY_INVENTORY
from repro.knowledge.memory import CXL_APPLIANCE


@pytest.fixture(scope="module")
def kb():
    return default_knowledge_base()


class TestDot:
    def test_figure1_dot_structure(self, kb):
        stacks = ["ZygOS", "Linux", "Snap", "NetChannel", "Shenango",
                  "Demikernel"]
        dot = orderings_to_dot(
            kb, ["throughput", "isolation", "app_modification"],
            systems=stacks,
        )
        assert dot.startswith("digraph ordering {")
        assert dot.rstrip().endswith("}")
        for stack in stacks:
            assert f'"{stack}"' in dot
        # Conditional edges are dashed and labelled.
        assert "style=dashed" in dot
        assert "network load ge 40g" in dot
        assert "pony" in dot
        # One color per dimension plus a legend.
        assert "goldenrod" in dot and "crimson" in dot
        assert "cluster_legend" in dot

    def test_edge_direction_better_to_worse(self, kb):
        dot = orderings_to_dot(kb, ["monitoring"],
                               systems=["Simon", "Pingmesh"])
        assert '"Simon" -> "Pingmesh"' in dot

    def test_system_filter(self, kb):
        dot = orderings_to_dot(kb, ["latency"], systems=["Swift", "Timely"])
        assert "Cubic" not in dot

    def test_unfiltered_includes_everything_active(self, kb):
        dot = orderings_to_dot(kb, ["monitoring"])
        assert "Everflow" in dot and "NetFlow" in dot


class TestCaseStudyBuilders:
    def test_inventory_models_exist(self, kb):
        for model in CASE_STUDY_INVENTORY:
            assert model in kb.hardware, model

    def test_inference_request_shape(self):
        request = inference_case_study()
        assert request.optimize == ["latency", "capex_usd", "monitoring"]
        workload = request.workloads[0]
        assert workload.peak_cores == 2800  # Listing 3
        assert workload.peak_gbps == 30
        assert {"dc_flows", "short_flows", "high_priority"} <= set(
            workload.properties
        )
        bounds = workload.performance_bounds
        assert len(bounds) == 1
        assert bounds[0].better_than == "PacketSpray"  # Listing 3
        assert request.context["network_load_ge_40g"] is False

    def test_builders_return_fresh_objects(self):
        first = inference_case_study()
        second = inference_case_study()
        first.context["mutated"] = True
        assert "mutated" not in second.context
        first.workloads[0].objectives.append("extra")
        assert "extra" not in second.workloads[0].objectives

    def test_more_workloads_freezes_whole_fleet(self):
        request = more_workloads_request({"SRV-G3-128C-512G": 20})
        assert request.fixed_hardware["SRV-G3-128C-512G"] == 20
        # Every other server model in the shortlist is pinned to zero.
        assert request.fixed_hardware["SRV-G2-64C-256G"] == 0
        assert request.fixed_hardware[CXL_APPLIANCE] == 0
        assert len(request.workloads) == 2

    def test_more_workloads_without_freeze(self):
        request = more_workloads_request()
        assert request.fixed_hardware == {}
        assert request.context["network_load_ge_40g"] is True

    def test_keep_sonata_pair(self):
        keep, free = keep_sonata_requests()
        assert keep.required_systems == ["Sonata"]
        assert free.required_systems == []
        assert [w.name for w in keep.workloads] == [
            w.name for w in free.workloads
        ]

    def test_cxl_pair(self):
        without, with_cxl = cxl_query_requests()
        assert "CXL-Pool" in without.forbidden_systems
        assert "CXL-Pool" not in with_cxl.forbidden_systems
        assert without.optimize == ["capex_usd"]
        memory_demand = sum(w.peak_mem_gb for w in without.workloads)
        assert memory_demand >= 9000  # the replication working set
