"""Golden regression corpus: small DIMACS instances with known verdicts.

``tests/corpus/manifest.json`` pins the expected satisfiability of every
``.cnf`` file in the directory. Each instance is checked through *both*
solver paths — the plain sequential :class:`~repro.sat.Solver` and the
deterministic interleaved portfolio — so a regression in either path
(or a divergence between them) fails loudly with the instance name.

The verdicts were fixed when the corpus was generated: the pigeonhole,
XOR-chain, and unit-conflict families are known analytically, and the
``n=20`` random instance was verified by exhaustive enumeration.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.par import default_portfolio, solve_portfolio
from repro.sat import Solver
from repro.sat.dimacs import read_dimacs

CORPUS = Path(__file__).parent / "corpus"
_MANIFEST = json.loads((CORPUS / "manifest.json").read_text())


def _load(name):
    entry = _MANIFEST[name]
    num_vars, clauses = read_dimacs(CORPUS / entry["file"])
    assert num_vars == entry["vars"]
    assert len(clauses) == entry["clauses"]
    return num_vars, clauses, entry["satisfiable"]


def test_manifest_covers_every_cnf_file():
    on_disk = {p.name for p in CORPUS.glob("*.cnf")}
    in_manifest = {entry["file"] for entry in _MANIFEST.values()}
    assert on_disk == in_manifest
    assert len(_MANIFEST) >= 10


@pytest.mark.parametrize("name", sorted(_MANIFEST))
def test_sequential_solver_matches_golden_verdict(name):
    num_vars, clauses, expected = _load(name)
    solver = Solver()
    solver.new_vars(num_vars)
    root_ok = all(solver.add_clause(c) for c in clauses)
    got = solver.solve() if root_ok else False
    assert got == expected, f"sequential solver regressed on {name}"
    if got:
        model = solver.model()
        assert all(
            any(model[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ), f"invalid model on {name}"


@pytest.mark.parametrize("name", sorted(_MANIFEST))
def test_portfolio_matches_golden_verdict(name):
    num_vars, clauses, expected = _load(name)
    result = solve_portfolio(
        num_vars, clauses, configs=default_portfolio(3)
    )
    assert result.satisfiable == expected, (
        f"portfolio regressed on {name} (winner={result.winner})"
    )
    if result.satisfiable:
        assert all(
            any(result.model[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ), f"invalid portfolio model on {name}"
