"""Differential fuzzing of the bounded-integer SMT layer.

Random systems of linear constraints over small-domain ``IntVar``s are
bit-blasted through :class:`~repro.smt.IntEncoder` and cross-checked
against exhaustive enumeration of the integer domains. Every SAT answer
is decoded back to integer values and re-checked constraint by
constraint, so the test catches both verdict bugs and model-decoding
bugs in the adder/comparator circuits.

Domains stay tiny (2-3 variables, width <= 5) so the enumeration oracle
is exact and fast; 200 seeded instances cover the coefficient-sign,
offset-sign, and operator space.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.sat import Solver
from repro.smt import IntEncoder, IntVar, LinExpr

_SEEDS = list(range(200))


def _random_system(rng: random.Random):
    """2-3 bounded IntVars and 1-3 random linear constraints over them."""
    variables = []
    for i in range(rng.randint(2, 3)):
        lo = rng.randint(-3, 3)
        variables.append(IntVar(f"x{i}", lo, lo + rng.randint(1, 4)))
    constraints = []
    for _ in range(rng.randint(1, 3)):
        expr = LinExpr(const=rng.randint(-5, 5))
        for var in rng.sample(variables, rng.randint(1, len(variables))):
            expr = expr + var * rng.choice([-3, -2, -1, 1, 2, 3])
        op = rng.choice(["<=", ">=", "=="])
        if op == "<=":
            constraints.append(expr <= 0)
        elif op == ">=":
            constraints.append(expr >= 0)
        else:
            constraints.append(expr.eq(0))
    return variables, constraints


def _brute_force(variables, constraints) -> bool:
    for point in itertools.product(
        *(range(v.lo, v.hi + 1) for v in variables)
    ):
        values = dict(zip(variables, point))
        if all(c.holds(values) for c in constraints):
            return True
    return False


@pytest.mark.parametrize("seed", _SEEDS)
def test_smt_differential(seed):
    rng = random.Random(f"smt-differential-{seed}")
    variables, constraints = _random_system(rng)

    solver = Solver()
    encoder = IntEncoder(solver)
    for constraint in constraints:
        encoder.assert_constraint(constraint)
    got = solver.solve()

    expected = _brute_force(variables, constraints)
    assert got == expected, (
        f"seed={seed} vars={variables} constraints={constraints}"
    )
    if got:
        model = solver.model()
        values = {v: encoder.value_of(v, model) for v in variables}
        for var, value in values.items():
            assert var.lo <= value <= var.hi, f"{var} decoded out of range"
        for constraint in constraints:
            assert constraint.holds(values), (
                f"decoded model violates {constraint} (values={values})"
            )


def test_case_count_meets_floor():
    assert len(_SEEDS) >= 200


@pytest.mark.parametrize("seed", range(20))
def test_reified_constraint_tracks_truth(seed):
    """The reification literal must equal the constraint's truth value.

    Assuming the literal forces a model where the constraint holds;
    assuming its negation forces a violating model (when one exists).
    """
    rng = random.Random(f"smt-reify-{seed}")
    variables, constraints = _random_system(rng)
    constraint = constraints[0]

    solver = Solver()
    encoder = IntEncoder(solver)
    lit = encoder.reify(constraint)

    if solver.solve([lit]):
        values = {v: encoder.value_of(v, solver.model()) for v in variables}
        assert constraint.holds(values)
    if solver.solve([-lit]):
        values = {v: encoder.value_of(v, solver.model()) for v in variables}
        assert not constraint.holds(values)
    # At least one polarity must be realizable over finite domains.
    assert solver.solve([lit]) or solver.solve([-lit])
