"""Tests for the request/result dataclasses and comparison helpers."""

from __future__ import annotations


from repro.core.design import (
    Conflict,
    DesignOutcome,
    DesignRequest,
    DesignSolution,
)
from repro.core.engine import ComparisonResult
from repro.kb.resources import ResourceLedger
from repro.kb.workload import Workload


def _solution(cost=100, systems=("A",), objective_costs=None) -> DesignSolution:
    return DesignSolution(
        systems=list(systems),
        features={},
        hardware={"Box": 2},
        properties=[],
        objective_costs=dict(objective_costs or {}),
        ledger=ResourceLedger(),
        cost_usd=cost,
        power_w=10,
    )


class TestDesignRequest:
    def test_totals(self):
        request = DesignRequest(workloads=[
            Workload(name="a", peak_cores=10, peak_gbps=2, peak_mem_gb=5,
                     kflows=1.5),
            Workload(name="b", peak_cores=20, peak_gbps=3, peak_mem_gb=7,
                     kflows=0.5),
        ])
        assert request.total_cores() == 30
        assert request.total_gbps() == 5
        assert request.total_mem_gb() == 12
        assert request.total_kflows() == 2.0

    def test_required_objectives_dedup_stable(self):
        request = DesignRequest(workloads=[
            Workload(name="a", objectives=["x", "y"]),
            Workload(name="b", objectives=["y", "z", "x"]),
        ])
        assert request.required_objectives() == ["x", "y", "z"]


class TestDesignOutcome:
    def test_truthiness(self):
        assert DesignOutcome(True, solution=_solution())
        assert not DesignOutcome(False)

    def test_solution_helpers(self):
        solution = _solution(systems=("A", "B"))
        assert solution.uses("A")
        assert not solution.uses("C")
        text = solution.summary()
        assert "A" in text and "2x Box" in text and "100" in text

    def test_summary_with_features_and_objectives(self):
        solution = _solution(objective_costs={"latency": 3})
        solution.features["A"] = ["turbo"]
        text = solution.summary()
        assert "turbo" in text
        assert "latency=3" in text


class TestConflict:
    def test_explanation_without_descriptions(self):
        conflict = Conflict(constraints=["x", "y"])
        text = conflict.explanation()
        assert "- x" in text and "- y" in text

    def test_explanation_with_descriptions(self):
        conflict = Conflict(constraints=["x"], descriptions={"x": "why"})
        assert "x: why" in conflict.explanation()


class TestComparisonResult:
    def test_deltas(self):
        result = ComparisonResult(
            baseline=DesignOutcome(True, solution=_solution(
                cost=100, objective_costs={"latency": 2})),
            alternative=DesignOutcome(True, solution=_solution(
                cost=80, objective_costs={"latency": 5, "monitoring": 1})),
        )
        assert result.both_feasible
        assert result.cost_delta() == -20
        assert result.objective_deltas() == {"latency": 3, "monitoring": 1}

    def test_infeasible_side(self):
        result = ComparisonResult(
            baseline=DesignOutcome(False),
            alternative=DesignOutcome(True, solution=_solution()),
        )
        assert not result.both_feasible
        assert result.cost_delta() is None
        assert result.objective_deltas() == {}
