"""Tests for §2.2 resource contention — per-device vs. pooled resources.

"one form of interaction is contention for resources (e.g. QoS classes,
FPGA gates and memory, CPU cores, etc)". CPU cores pool across servers;
P4 stages, QoS classes, and FPGA gates are contended per device — buying
more switches does not create more pipeline stages.
"""

from __future__ import annotations


from repro.core.design import DesignRequest
from repro.core.engine import ReasoningEngine
from repro.kb.dsl import prop
from repro.kb.hardware import Hardware, NICSpec, ServerSpec, SwitchSpec
from repro.kb.registry import KnowledgeBase
from repro.kb.resources import ResourceDemand, is_additive
from repro.kb.system import System
from repro.kb.workload import Workload


def _kb(stages_small: int = 8, stages_big: int = 20) -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_system(System(name="Stack", category="network_stack",
                         solves=["packet_processing"]))
    kb.add_system(System(
        name="TelemetryQ", category="monitoring", solves=["telemetry"],
        requires=prop("switch", "P4_PROGRAMMABLE"),
        resources=[ResourceDemand("p4_stages", fixed=6)],
    ))
    kb.add_system(System(
        name="FabricLB", category="load_balancer", solves=["balancing"],
        requires=prop("switch", "P4_PROGRAMMABLE"),
        resources=[ResourceDemand("p4_stages", fixed=7)],
    ))
    kb.add_hardware(Hardware(spec=SwitchSpec(
        model="P4Small", port_gbps=100, ports=32, memory_mb=64,
        power_w=500, cost_usd=50_000, p4_programmable=True,
        p4_stages=stages_small,
    ), max_units=8))
    kb.add_hardware(Hardware(spec=SwitchSpec(
        model="P4Big", port_gbps=100, ports=32, memory_mb=64,
        power_w=700, cost_usd=120_000, p4_programmable=True,
        p4_stages=stages_big,
    ), max_units=8))
    kb.add_hardware(Hardware(spec=ServerSpec(
        model="Box", cores=32, mem_gb=128, power_w=300, cost_usd=4_000,
    )))
    kb.add_hardware(Hardware(spec=NICSpec(
        model="Nic", rate_gbps=25, power_w=5, cost_usd=150,
    ), max_units=32))
    return kb


def _request(objectives, **kwargs) -> DesignRequest:
    return DesignRequest(
        workloads=[Workload(name="w", objectives=objectives)], **kwargs
    )


class TestCatalogFlags:
    def test_additivity_classification(self):
        assert is_additive("cpu_cores")
        assert is_additive("server_mem_gb")
        assert not is_additive("p4_stages")
        assert not is_additive("qos_classes")
        assert not is_additive("fpga_gates_k")
        assert is_additive("unknown_kind")  # default


class TestPerDeviceSemantics:
    def test_one_program_fits_small_switch(self):
        engine = ReasoningEngine(_kb(), validate=False)
        outcome = engine.synthesize(
            _request(["packet_processing", "telemetry"])
        )
        assert outcome.feasible

    def test_two_programs_exceed_small_switch(self):
        """6 + 7 = 13 stages: fits P4Big (20), not P4Small (8)."""
        engine = ReasoningEngine(_kb(), validate=False)
        outcome = engine.synthesize(
            _request(["packet_processing", "telemetry", "balancing"],
                     inventory={"P4Small": 8, "Box": 8, "Nic": 32}),
        )
        assert not outcome.feasible
        assert "resource:p4_stages" in outcome.conflict.constraints

    def test_big_switch_hosts_both(self):
        engine = ReasoningEngine(_kb(), validate=False)
        outcome = engine.synthesize(
            _request(["packet_processing", "telemetry", "balancing"])
        )
        assert outcome.feasible
        assert outcome.solution.hardware.get("P4Big", 0) >= 1

    def test_more_units_do_not_add_stages(self):
        """The defining non-additive property: 8 small switches still
        cannot run a 13-stage program set."""
        engine = ReasoningEngine(_kb(), validate=False)
        outcome = engine.synthesize(
            _request(["packet_processing", "telemetry", "balancing"],
                     inventory={"P4Small": 8, "Box": 8, "Nic": 32},
                     fixed_hardware={"P4Small": 8}),
        )
        assert not outcome.feasible

    def test_mixed_fleet_constrained_by_weakest(self):
        """Every deployed device must fit the program set: forcing a
        small switch into the fleet breaks the 13-stage deployment even
        though a big one is also present."""
        engine = ReasoningEngine(_kb(), validate=False)
        outcome = engine.synthesize(
            _request(["packet_processing", "telemetry", "balancing"],
                     fixed_hardware={"P4Small": 1, "P4Big": 1}),
        )
        assert not outcome.feasible

    def test_ledger_reports_min_capacity(self):
        engine = ReasoningEngine(_kb(), validate=False)
        outcome = engine.synthesize(
            _request(["packet_processing", "telemetry"])
        )
        ledger = outcome.solution.ledger
        assert ledger.demands.get("p4_stages") == 6
        deployed_p4 = [
            m for m in outcome.solution.hardware if m.startswith("P4")
        ]
        assert deployed_p4
        assert ledger.capacities["p4_stages"] >= 6


class TestQosClasses:
    def test_qos_demand_constrains_switch_choice(self, ):
        kb = _kb()
        kb.add_system(System(
            name="PrioHog", category="congestion_control",
            solves=["bandwidth_allocation"],
            resources=[ResourceDemand("qos_classes", fixed=6)],
        ))
        kb.add_hardware(Hardware(spec=SwitchSpec(
            model="FourClass", port_gbps=100, ports=32, memory_mb=16,
            power_w=200, cost_usd=5_000, qos_classes=4,
        )))
        engine = ReasoningEngine(kb, validate=False)
        outcome = engine.synthesize(_request(
            ["packet_processing", "bandwidth_allocation"],
            inventory={"FourClass": 4, "Box": 8, "Nic": 32},
        ))
        assert not outcome.feasible
        assert "resource:qos_classes" in outcome.conflict.constraints
        # With an 8-class switch available it works.
        retry = engine.synthesize(_request(
            ["packet_processing", "bandwidth_allocation"],
        ))
        assert retry.feasible


class TestFullKbStillConsistent:
    def test_default_kb_case_study_unaffected(self):
        """Timely/Swift's 1-class demand fits every catalog switch."""
        from repro.knowledge import default_knowledge_base

        kb = default_knowledge_base()
        engine = ReasoningEngine(kb)
        outcome = engine.check(DesignRequest(
            workloads=[Workload(
                name="w",
                objectives=["packet_processing", "bandwidth_allocation"],
            )],
            required_systems=["Swift"],
            candidate_systems=["Linux", "Swift"],
            inventory={"FF-100G-32P": 4, "STD-100G-TS-IP": 16,
                       "SRV-G2-64C-256G": 8},
        ))
        assert outcome.feasible
