"""Smoke tests: the example scripts must run end to end.

The heavyweight examples (full case study, what-if queries) are exercised
by benchmarks E4; here only the fast ones run, as subprocesses, so import
errors or API drift in `examples/` fail CI.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "encoding_pipeline.py",
    "evolution_and_measurements.py",
    "render_figure1.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"


def test_quickstart_output_shape():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=240,
    )
    assert "=== synthesize ===" in result.stdout
    assert "Deployed systems:" in result.stdout
    assert "No compliant design exists" in result.stdout
    assert "equivalence classes" in result.stdout


def test_figure1_dot_is_valid_ish():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "render_figure1.py")],
        capture_output=True, text=True, timeout=240,
    )
    assert result.stdout.startswith("digraph ordering {")
    assert result.stdout.rstrip().endswith("}")
    assert "Shenango" in result.stdout
    # The deliberate-gap note lands on stderr.
    assert "no comparison exists" in result.stderr


def test_heavy_examples_importable():
    """The slow examples at least parse and import their dependencies."""
    import ast

    for script in ("ml_inference_casestudy.py", "whatif_queries.py",
                   "pfc_deadlock_audit.py"):
        source = (EXAMPLES / script).read_text()
        ast.parse(source)
