"""Tests for the built-in knowledge base content (the §5.1 prototype)."""

from __future__ import annotations

import pytest

from repro.knowledge import default_knowledge_base
from repro.knowledge.hardware_catalog import catalog_size
from repro.knowledge.orderings import (
    APP_MODIFICATION,
    DEPLOYMENT_EASE,
    ISOLATION,
    MONITORING,
    THROUGHPUT,
)

FIGURE1_STACKS = ["ZygOS", "Linux", "Snap", "NetChannel", "Shenango",
                  "Demikernel"]


@pytest.fixture(scope="module")
def kb():
    return default_knowledge_base()


class TestScale:
    """§5.1's headline numbers."""

    def test_over_fifty_systems(self, kb):
        assert len(kb.systems) > 50

    def test_seven_plus_categories(self, kb):
        paper_categories = {
            "network_stack", "congestion_control", "monitoring", "firewall",
            "virtual_switch", "load_balancer", "transport_protocol",
        }
        assert paper_categories <= kb.categories()

    def test_about_two_hundred_hardware(self, kb):
        assert len(kb.hardware) >= 200
        assert catalog_size() >= 200

    def test_validates_clean(self, kb):
        assert [i for i in kb.validate() if i.severity == "error"] == []

    def test_hardware_kinds_all_present(self, kb):
        kinds = {h.kind for h in kb.hardware.values()}
        assert kinds == {"switch", "nic", "server"}


class TestFigure1:
    """The network-stack partial ordering of Figure 1."""

    def test_all_six_stacks_present(self, kb):
        for stack in FIGURE1_STACKS:
            assert kb.system(stack).category == "network_stack"

    def test_throughput_edges_need_40g(self, kb):
        low = kb.ordering_graph(THROUGHPUT, {})
        assert not low.better_than("NetChannel", "Linux")
        high = kb.ordering_graph(
            THROUGHPUT, {"ctx::network_load_ge_40g": True}
        )
        assert high.better_than("NetChannel", "Linux")
        assert high.better_than("NetChannel", "Snap")
        assert high.better_than("Snap", "Linux")

    def test_pony_conditional_edge(self, kb):
        without = kb.ordering_graph(THROUGHPUT, {})
        assert not without.better_than("Snap", "ZygOS")
        with_pony = kb.ordering_graph(
            THROUGHPUT, {"feat::Snap::pony": True}
        )
        assert with_pony.better_than("Snap", "ZygOS")

    def test_isolation_orderings(self, kb):
        graph = kb.ordering_graph(ISOLATION, {})
        assert graph.better_than("Linux", "Shenango")
        assert graph.better_than("Snap", "Shenango")

    def test_deliberate_gap_shenango_demikernel(self, kb):
        """§3.1: no isolation comparison exists in the literature."""
        graph = kb.ordering_graph(ISOLATION, {})
        assert not graph.comparable("Shenango", "Demikernel")
        assert ("Demikernel", "Shenango") in graph.incomparable_pairs()

    def test_app_modification_pony_edge(self, kb):
        plain = kb.ordering_graph(APP_MODIFICATION, {})
        assert not plain.better_than("Linux", "Snap")
        pony = kb.ordering_graph(
            APP_MODIFICATION, {"feat::Snap::pony": True}
        )
        assert pony.better_than("Linux", "Snap")


class TestListing2:
    """Simon's encoding and the monitoring orderings."""

    def test_simon_solves(self, kb):
        simon = kb.system("Simon")
        assert set(simon.solves) == {"capture_delays", "detect_queue_length"}

    def test_simon_needs_timestamps_and_cores(self, kb):
        from repro.logic.simplify import free_vars

        simon = kb.system("Simon")
        assert "prop::nic::NIC_TIMESTAMPS" in free_vars(simon.requires)
        demand = simon.demand_for("cpu_cores")
        assert demand is not None and demand.per_kflow > 0

    def test_simon_pingmesh_pair(self, kb):
        monitoring = kb.ordering_graph(MONITORING, {})
        ease = kb.ordering_graph(DEPLOYMENT_EASE, {})
        assert monitoring.better_than("Simon", "Pingmesh")
        assert ease.better_than("Pingmesh", "Simon")


class TestSectionThreeOne:
    """§3.1's congestion-control requirement examples."""

    def test_hpcc_needs_int(self, kb):
        from repro.logic.simplify import free_vars

        assert "prop::switch::INT" in free_vars(kb.system("HPCC").requires)

    def test_timely_swift_need_timestamps_and_qos(self, kb):
        from repro.logic.simplify import free_vars

        for name in ("Timely", "Swift"):
            needs = free_vars(kb.system(name).requires)
            assert "prop::nic::NIC_TIMESTAMPS" in needs
            assert "prop::switch::QOS_CLASSES_8" in needs

    def test_annulus_wan_dc_condition(self, kb):
        from repro.logic.simplify import free_vars

        needs = free_vars(kb.system("Annulus").requires)
        assert "ctx::competing_wan_dc_traffic" in needs
        assert "prop::switch::QCN" in needs

    def test_vegas_scavenger_caveat(self, kb):
        from repro.logic.simplify import free_vars

        needs = free_vars(kb.system("Vegas").requires)
        assert "ctx::scavenger_transport_ok" in needs
        assert "prop::switch::DEEP_BUFFERS" in needs

    def test_packet_spray_reorder_buffers(self, kb):
        from repro.logic.simplify import free_vars

        needs = free_vars(kb.system("PacketSpray").requires)
        assert "prop::nic::LARGE_REORDER_BUFFER" in needs


class TestRules:
    def test_pfc_rules_present(self, kb):
        assert "pfc_no_flooding" in kb.rules
        assert "pfc_flooding_strict" in kb.rules
        assert "single_overlay_encapsulation" in kb.rules

    def test_overlay_rule_covers_all_providers(self, kb):
        from repro.logic.simplify import free_vars

        rule = kb.rules["single_overlay_encapsulation"]
        referenced = {
            name[len("sys::"):] for name in free_vars(rule.formula)
        }
        providers = {
            s.name for s in kb.systems.values()
            if "net::OVERLAY_ENCAP" in s.provides
        }
        assert referenced == providers
        assert "Antrea" in providers and "OVS" in providers

    def test_cxl_appliance_rule(self, kb):
        assert "cxl_appliance_needs_pool" in kb.rules
        assert kb.hardware_model("CXL-MEM-APPLIANCE").spec.mem_gb == 4096


class TestOrderingHygiene:
    def test_no_unconditional_cycles_any_dimension(self, kb):
        for dimension in kb.dimensions():
            kb.ordering_graph(dimension, {})  # raises on a cycle

    def test_subjective_edges_flagged(self, kb):
        assert any(o.subjective for o in kb.orderings)

    def test_all_edges_cited(self, kb):
        assert all(o.source for o in kb.orderings)
