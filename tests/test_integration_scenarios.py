"""End-to-end scenarios on the full knowledge base.

Each test reproduces one of the paper's cross-system interaction stories
(§1, §2.2, §2.3, §3.1) through the public engine API, against compact
hardware shortlists that keep solves fast.
"""

from __future__ import annotations

import pytest

from repro.core.design import DesignRequest
from repro.core.engine import ReasoningEngine
from repro.kb.workload import Workload
from repro.knowledge import default_knowledge_base

BASIC_INVENTORY = {
    "SRV-G2-64C-256G": 32,
    "STD-100G-TS-IP": 64,
    "STD-100G": 64,
    "FF-100G-32P": 8,
    "FF-100G-32P-DB": 8,
}


@pytest.fixture(scope="module")
def kb():
    return default_knowledge_base()


@pytest.fixture(scope="module")
def engine(kb):
    return ReasoningEngine(kb)


def _request(objectives, *, systems=None, inventory=None, **kwargs):
    return DesignRequest(
        workloads=[Workload(name="app", objectives=list(objectives),
                            peak_cores=64)],
        candidate_systems=systems,
        inventory=dict(inventory or BASIC_INVENTORY),
        **kwargs,
    )


class TestHardwareDependencyChains:
    """§3.1: selection hinges on a few crucial hardware details."""

    def test_hpcc_forces_int_switches_and_rdma(self, engine):
        outcome = engine.synthesize(_request(
            ["packet_processing", "bandwidth_allocation"],
            systems=["Linux", "HPCC"],
            required_systems=["HPCC"],
            inventory={**BASIC_INVENTORY,
                       "SPINE-100G-64P": 4, "RDMA-100G-RB": 64},
        ))
        assert outcome.feasible
        assert any(m.startswith("SPINE") or m.startswith("P4")
                   for m in outcome.solution.hardware), "INT switch needed"
        assert any(m.startswith("RDMA") or m.startswith("DPU") or
                   m.startswith("FPGA")
                   for m in outcome.solution.hardware), "RDMA NIC needed"

    def test_hpcc_impossible_without_int(self, engine):
        outcome = engine.check(_request(
            ["packet_processing", "bandwidth_allocation"],
            systems=["Linux", "HPCC"],
            required_systems=["HPCC"],
        ))  # BASIC_INVENTORY has no INT switch
        assert not outcome.feasible
        assert "require:HPCC" in outcome.conflict.constraints

    def test_timely_needs_timestamps(self, engine):
        no_ts = {
            "SRV-G2-64C-256G": 32, "STD-100G": 64, "FF-100G-32P": 8,
        }
        outcome = engine.check(_request(
            ["packet_processing", "bandwidth_allocation"],
            systems=["Linux", "Timely"],
            required_systems=["Timely"],
            inventory=no_ts,
        ))
        assert not outcome.feasible
        with_ts = engine.check(_request(
            ["packet_processing", "bandwidth_allocation"],
            systems=["Linux", "Timely"],
            required_systems=["Timely"],
        ))
        assert with_ts.feasible

    def test_packet_spray_needs_reorder_and_fabric(self, engine):
        outcome = engine.check(_request(
            ["packet_processing", "load_balancing"],
            systems=["Linux", "PacketSpray"],
            required_systems=["PacketSpray"],
        ))
        assert not outcome.feasible  # no spray fabric in basic inventory
        upgraded = engine.check(_request(
            ["packet_processing", "load_balancing"],
            systems=["Linux", "PacketSpray"],
            required_systems=["PacketSpray"],
            inventory={**BASIC_INVENTORY,
                       "P4-100G-S16-32P": 4, "RDMA-100G-RB": 64},
        ))
        assert upgraded.feasible


class TestScavengerCaveat:
    """§2.2: delay-based CC needs scavenger mode + deep buffers."""

    def test_vegas_blocked_by_default(self, engine):
        outcome = engine.check(_request(
            ["packet_processing", "bandwidth_allocation"],
            systems=["Linux", "Vegas"],
            required_systems=["Vegas"],
        ))
        assert not outcome.feasible

    def test_vegas_with_scavenger_and_deep_buffers(self, engine):
        outcome = engine.check(_request(
            ["packet_processing", "bandwidth_allocation"],
            systems=["Linux", "Vegas"],
            required_systems=["Vegas"],
            context={"scavenger_transport_ok": True},
        ))
        assert outcome.feasible
        assert any(m.endswith("-DB") for m in outcome.solution.hardware), (
            "deep-buffer switches must be part of the build"
        )


class TestEdgeSharing:
    """§1: an edge LB provisions resources an edge firewall reuses."""

    def test_edge_firewall_rides_on_edge_lb(self, engine):
        alone = engine.check(_request(
            ["packet_processing", "edge_filtering"],
            systems=["Linux", "EdgeFirewall", "Iptables"],
        ))
        assert not alone.feasible  # nothing provides EDGE_RESOURCES
        together = engine.synthesize(_request(
            ["packet_processing", "edge_filtering", "load_balancing"],
            systems=["Linux", "EdgeFirewall", "EdgeL7LB", "ECMP"],
        ))
        assert together.feasible
        assert together.solution.uses("EdgeL7LB")
        assert together.solution.uses("EdgeFirewall")


class TestSnapPony:
    """Figure 1's feature conditions drive real choices."""

    def test_pony_needs_modifiable_apps(self, engine):
        request = _request(
            ["packet_processing"],
            systems=["Snap", "Linux"],
            required_systems=["Snap"],
        )
        compiled = engine.compile(request)
        assert compiled.solve()
        pony = compiled.feat_lits[("Snap", "pony")]
        assert not compiled.solve([pony])  # APP_MODIFIABLE not granted
        granted = _request(
            ["packet_processing"],
            systems=["Snap", "Linux"],
            required_systems=["Snap"],
            given_properties=["site::APP_MODIFIABLE"],
        )
        compiled2 = engine.compile(granted)
        pony2 = compiled2.feat_lits[("Snap", "pony")]
        assert compiled2.solve([pony2])


class TestResearchGate:
    """§3.1: a sharp deadline rules out research systems wholesale."""

    def test_shenango_needs_research_tolerance(self, engine):
        request = _request(
            ["low_latency_packet_processing"],
            systems=["Shenango", "Snap", "Linux"],
            required_systems=["Shenango"],
        )
        assert not engine.check(request).feasible
        relaxed = _request(
            ["low_latency_packet_processing"],
            systems=["Shenango", "Snap", "Linux"],
            required_systems=["Shenango"],
            given_properties=["site::RESEARCH_OK"],
        )
        assert engine.check(relaxed).feasible

    def test_engine_routes_around_research_systems(self, engine):
        outcome = engine.synthesize(_request(
            ["low_latency_packet_processing", "packet_processing"],
            systems=["Shenango", "Demikernel", "ZygOS", "Snap", "Linux"],
        ))
        assert outcome.feasible
        assert outcome.solution.uses("Snap"), (
            "Snap is the only non-research low-latency stack here"
        )


class TestCrossTeamOverlay:
    """§2.2: the VMware double-encapsulation incident, prevented."""

    def test_two_overlays_rejected(self, engine):
        outcome = engine.check(_request(
            ["packet_processing", "network_virtualization",
             "container_networking"],
            systems=["Linux", "OVS", "Antrea", "Calico-eBPF"],
            required_systems=["OVS", "Antrea"],  # two teams, two overlays
        ))
        assert not outcome.feasible
        assert "rule:single_overlay_encapsulation" in (
            outcome.conflict.constraints
        )

    def test_non_encapsulating_cni_coexists(self, engine):
        outcome = engine.check(_request(
            ["packet_processing", "network_virtualization",
             "container_networking"],
            systems=["Linux", "OVS", "Antrea", "Calico-eBPF"],
            required_systems=["OVS", "Calico-eBPF"],
        ))
        assert outcome.feasible

    def test_engine_picks_compatible_pair(self, engine):
        outcome = engine.synthesize(_request(
            ["packet_processing", "network_virtualization",
             "container_networking"],
            systems=["Linux", "OVS", "Antrea", "Calico-eBPF"],
        ))
        assert outcome.feasible
        deployed = set(outcome.solution.systems)
        overlays = deployed & {"OVS", "Antrea"}
        assert len(overlays) <= 1


class TestSmartNicAmortization:
    """§2.3: once SmartNICs are in, the marginal cost of more SmartNIC
    systems drops — the optimizer should co-locate them."""

    def test_simon_and_smartnic_firewall_share(self, engine):
        outcome = engine.synthesize(_request(
            ["packet_processing", "detect_queue_length", "packet_filtering"],
            systems=["Linux", "Simon", "SmartNIC-Firewall", "Iptables",
                     "Pingmesh", "Sonata"],
            inventory={**BASIC_INVENTORY, "FPGA-100G-1000K": 32},
            optimize=["capex_usd"],
        ))
        assert outcome.feasible
        if outcome.solution.uses("Simon"):
            # Simon brought FPGA NICs; the firewall should ride them
            # rather than burn host cores.
            assert outcome.solution.uses("SmartNIC-Firewall") or (
                outcome.solution.uses("Iptables")
            )

    def test_fpga_capacity_is_per_nic(self, engine):
        """AccelNet (400K gates) + firewall (150K) need a 1000K-gate
        model; the 500K model cannot host both (non-additive)."""
        small_only = engine.check(_request(
            ["packet_processing", "network_virtualization",
             "packet_filtering"],
            systems=["Linux", "AccelNet-Offload", "SmartNIC-Firewall"],
            required_systems=["AccelNet-Offload", "SmartNIC-Firewall"],
            inventory={**BASIC_INVENTORY, "FPGA-100G-500K": 32},
        ))
        assert not small_only.feasible
        assert "resource:fpga_gates_k" in small_only.conflict.constraints
        big = engine.check(_request(
            ["packet_processing", "network_virtualization",
             "packet_filtering"],
            systems=["Linux", "AccelNet-Offload", "SmartNIC-Firewall"],
            required_systems=["AccelNet-Offload", "SmartNIC-Firewall"],
            inventory={**BASIC_INVENTORY, "FPGA-100G-1000K": 32},
        ))
        assert big.feasible
