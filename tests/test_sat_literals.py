"""Tests for the literal convention helpers."""

from __future__ import annotations

import pytest

from repro.errors import InvalidLiteralError
from repro.sat.literals import (
    check_clause,
    check_literal,
    is_positive,
    neg,
    var_of,
)


class TestHelpers:
    def test_var_of(self):
        assert var_of(5) == 5
        assert var_of(-5) == 5

    def test_neg_is_involution(self):
        for lit in (1, -1, 42, -42):
            assert neg(neg(lit)) == lit
            assert neg(lit) == -lit

    def test_is_positive(self):
        assert is_positive(3)
        assert not is_positive(-3)


class TestValidation:
    def test_valid_literals_pass(self):
        check_literal(1, 5)
        check_literal(-5, 5)

    def test_zero_rejected(self):
        with pytest.raises(InvalidLiteralError):
            check_literal(0, 5)

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidLiteralError):
            check_literal(6, 5)
        with pytest.raises(InvalidLiteralError):
            check_literal(-6, 5)

    def test_non_int_rejected(self):
        with pytest.raises(InvalidLiteralError):
            check_literal("1", 5)  # type: ignore[arg-type]
        with pytest.raises(InvalidLiteralError):
            check_literal(True, 5)

    def test_check_clause_materializes(self):
        lits = check_clause(iter([1, -2, 3]), 3)
        assert lits == [1, -2, 3]
        with pytest.raises(InvalidLiteralError):
            check_clause([1, 0], 3)
