"""Tests for the bounded-integer SMT layer."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError, UnboundedIntError
from repro.sat import Solver
from repro.smt import IntEncoder, IntVar, LinExpr
from repro.smt.intervals import Interval, bounds_of, trivially


class TestTerms:
    def test_intvar_validation(self):
        with pytest.raises(ValueError):
            IntVar("x", 5, 2)
        with pytest.raises(ValueError):
            IntVar("", 0, 1)
        with pytest.raises(UnboundedIntError):
            IntVar("x", 0.5, 2)  # type: ignore[arg-type]

    def test_linexpr_arithmetic(self):
        x = IntVar("x", 0, 10)
        y = IntVar("y", -5, 5)
        expr = 2 * x - y + 7
        assert expr.coeffs == {x: 2, y: -1}
        assert expr.const == 7
        assert (expr - expr).equals(LinExpr())

    def test_cancellation_removes_var(self):
        x = IntVar("x", 0, 10)
        expr = x - x
        assert expr.coeffs == {}

    def test_scale(self):
        x = IntVar("x", 0, 10)
        assert ((x + 1) * 3).const == 3
        assert ((x + 1) * 0).equals(LinExpr())
        with pytest.raises(TypeError):
            (x + 1) * 1.5  # type: ignore[operator]

    def test_evaluate(self):
        x = IntVar("x", 0, 10)
        y = IntVar("y", 0, 10)
        expr = 3 * x - 2 * y + 1
        assert expr.evaluate({x: 4, y: 5}) == 3

    def test_comparisons_normalize(self):
        x = IntVar("x", 0, 10)
        c = x <= 5
        assert c.op == "<="
        assert c.expr.evaluate({x: 5}) == 0
        c2 = x > 3  # x - 4 >= 0 -> 4 - x <= 0 form
        assert c2.op == "<="
        assert c2.holds({x: 4}) and not c2.holds({x: 3})

    def test_constraint_holds(self):
        x = IntVar("x", 0, 10)
        assert (x >= 2).holds({x: 2})
        assert not (x >= 2).holds({x: 1})
        assert (x.eq(7)).holds({x: 7})
        assert not (x.eq(7)).holds({x: 6})


class TestIntervals:
    def test_interval_arithmetic(self):
        a = Interval(1, 3)
        b = Interval(-2, 5)
        assert a + b == Interval(-1, 8)
        assert a.scale(-2) == Interval(-6, -2)
        assert a.shift(10) == Interval(11, 13)

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 1)

    def test_bounds_of(self):
        x = IntVar("x", 0, 4)
        y = IntVar("y", -1, 2)
        iv = bounds_of(2 * x - 3 * y + 1)
        assert iv == Interval(2 * 0 - 3 * 2 + 1, 2 * 4 - 3 * -1 + 1)

    def test_trivially(self):
        x = IntVar("x", 0, 4)
        assert trivially(x >= 0) is True
        assert trivially(x <= -1) is False
        assert trivially(x <= 2) is None
        assert trivially((x - x).eq(0)) is True


class TestEncoder:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_reify_matches_semantics(self, data):
        n = data.draw(st.integers(1, 3))
        variables = []
        for i in range(n):
            lo = data.draw(st.integers(-5, 4))
            hi = lo + data.draw(st.integers(0, 7))
            variables.append(IntVar(f"v{i}", lo, hi))
        coeffs = data.draw(
            st.lists(st.integers(-3, 3), min_size=n, max_size=n)
        )
        const = data.draw(st.integers(-8, 8))
        op = data.draw(st.sampled_from(["<=", "=="]))
        expr = LinExpr(dict(zip(variables, coeffs)), const)
        constraint = expr <= 0 if op == "<=" else expr.eq(0)
        solver = Solver()
        encoder = IntEncoder(solver)
        lit = encoder.reify(constraint)
        for v in variables:
            encoder.bits_for(v)
        for values in itertools.product(
            *[range(v.lo, v.hi + 1) for v in variables]
        ):
            env = dict(zip(variables, values))
            assumptions = [lit if constraint.holds(env) else -lit]
            for v, value in env.items():
                bits = encoder.bits_for(v)
                raw = value - v.lo
                assumptions.extend(
                    bit if (raw >> i) & 1 else -bit
                    for i, bit in enumerate(bits)
                )
            assert solver.solve(assumptions), (env, constraint.holds(env))

    def test_assert_constraint_and_extract(self):
        solver = Solver()
        encoder = IntEncoder(solver)
        x = IntVar("x", 0, 100)
        y = IntVar("y", 0, 100)
        encoder.assert_constraint((x + y).eq(37))
        encoder.assert_constraint(x >= 20)
        encoder.assert_constraint(y >= 10)
        assert solver.solve()
        values = encoder.values(solver.model())
        assert values[x] + values[y] == 37
        assert values[x] >= 20 and values[y] >= 10

    def test_guarded_constraint(self):
        solver = Solver()
        encoder = IntEncoder(solver)
        guard = solver.new_var()
        x = IntVar("x", 0, 10)
        encoder.assert_implies(guard, x <= 3)
        encoder.assert_constraint(x >= 5)
        assert solver.solve([-guard])
        assert not solver.solve([guard])

    def test_bind_boolean(self):
        solver = Solver()
        encoder = IntEncoder(solver)
        flag = solver.new_var()
        b = IntVar("b", 0, 1)
        encoder.bind_boolean(b, flag)
        x = IntVar("x", 0, 10)
        encoder.assert_constraint((x + 5 * b) <= 7)
        assert solver.solve([flag])
        assert encoder.value_of(x, solver.model()) <= 2
        assert encoder.value_of(b, solver.model()) == 1

    def test_bind_boolean_rejects_wide_domain(self):
        solver = Solver()
        encoder = IntEncoder(solver)
        with pytest.raises(EncodingError):
            encoder.bind_boolean(IntVar("b", 0, 2), solver.new_var())

    def test_range_constraint_enforced(self):
        solver = Solver()
        encoder = IntEncoder(solver)
        x = IntVar("x", 0, 5)  # needs 3 bits; 6 and 7 must be excluded
        bits = encoder.bits_for(x)
        assert not solver.solve([bits[0], bits[1], bits[2]])  # 7
        assert not solver.solve([-bits[0], bits[1], bits[2]])  # 6
        assert solver.solve([bits[0], -bits[1], bits[2]])  # 5

    def test_negative_domain(self):
        solver = Solver()
        encoder = IntEncoder(solver)
        x = IntVar("x", -7, -3)
        encoder.assert_constraint(x.eq(-5))
        assert solver.solve()
        assert encoder.value_of(x, solver.model()) == -5

    def test_unencoded_var_reads_lo(self):
        solver = Solver()
        encoder = IntEncoder(solver)
        x = IntVar("x", 3, 9)
        solver.new_var()
        solver.solve()
        assert encoder.value_of(x, solver.model()) == 3

    def test_sum_cache_reused(self):
        solver = Solver()
        encoder = IntEncoder(solver)
        x = IntVar("x", 0, 30)
        y = IntVar("y", 0, 30)
        expr = 3 * x + 5 * y
        encoder.reify(expr <= 40)
        vars_before = solver.num_vars
        encoder.reify(expr <= 20)  # same adder tree, new comparator only
        delta = solver.num_vars - vars_before
        assert delta < 30, f"adder tree re-encoded ({delta} new vars)"

    def test_const_bits_rejects_negative(self):
        solver = Solver()
        encoder = IntEncoder(solver)
        with pytest.raises(EncodingError):
            encoder.const_bits(-1)
