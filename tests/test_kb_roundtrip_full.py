"""Round-trip the complete default knowledge base through JSON.

The crowd-sourcing story (§3.3, §4) depends on encodings surviving
serialization exactly: a KB exported, shared, and re-imported must answer
queries identically.
"""

from __future__ import annotations

import pytest

from repro.core.design import DesignRequest
from repro.core.engine import ReasoningEngine
from repro.kb.registry import KnowledgeBase
from repro.kb.workload import Workload
from repro.knowledge import default_knowledge_base


@pytest.fixture(scope="module")
def kb():
    return default_knowledge_base()


@pytest.fixture(scope="module")
def clone(kb):
    return KnowledgeBase.from_json(kb.to_json())


class TestExactness:
    def test_stats_identical(self, kb, clone):
        assert clone.stats() == kb.stats()

    def test_every_system_identical(self, kb, clone):
        for name, system in kb.systems.items():
            assert clone.systems[name].to_dict() == system.to_dict(), name

    def test_every_hardware_identical(self, kb, clone):
        for model, hardware in kb.hardware.items():
            assert clone.hardware[model].to_dict() == hardware.to_dict()

    def test_every_rule_identical(self, kb, clone):
        for name, rule in kb.rules.items():
            assert clone.rules[name].to_dict() == rule.to_dict()

    def test_orderings_identical(self, kb, clone):
        assert len(clone.orderings) == len(kb.orderings)
        for a, b in zip(kb.orderings, clone.orderings):
            assert (a.better, a.worse, a.dimension, a.condition,
                    a.source, a.subjective) == (
                b.better, b.worse, b.dimension, b.condition,
                b.source, b.subjective,
            )

    def test_clone_validates(self, clone):
        clone.validate_or_raise()

    def test_double_roundtrip_fixpoint(self, kb, clone):
        again = KnowledgeBase.from_json(clone.to_json())
        assert again.to_json() == clone.to_json()


class TestBehavioralEquivalence:
    def test_queries_agree(self, kb, clone):
        request = DesignRequest(
            workloads=[Workload(
                name="app",
                objectives=["packet_processing", "bandwidth_allocation",
                            "detect_queue_length"],
                peak_cores=128,
                kflows=5,
            )],
            context={"datacenter_fabric": True},
            inventory={
                "SRV-G2-64C-256G": 16,
                "STD-100G-TS-IP": 64,
                "DPU-100G-16C": 16,
                "FF-100G-32P": 4,
            },
        )
        original = ReasoningEngine(kb).check(request)
        reloaded = ReasoningEngine(clone).check(request)
        assert original.feasible == reloaded.feasible is True

    def test_infeasible_diagnoses_agree(self, kb, clone):
        request = DesignRequest(
            workloads=[Workload(name="app",
                                objectives=["packet_processing"])],
            required_systems=["Linux"],
            forbidden_systems=["Linux"],
        )
        a = ReasoningEngine(kb).diagnose(request)
        b = ReasoningEngine(clone).diagnose(request)
        assert a.constraints == b.constraints
