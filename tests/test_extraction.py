"""Tests for the simulated extraction pipeline and encoding checker."""

from __future__ import annotations

import random

import pytest

from repro.errors import ExtractionError
from repro.extraction import (
    EncodingChecker,
    FaultKind,
    NoiseModel,
    extract_system,
    inject_fault,
    parse_spec_sheet,
    spec_sheet_text,
    system_prose,
)
from repro.extraction.checker import detection_rate
from repro.extraction.noise import PERFECT
from repro.kb.ordering import Ordering
from repro.knowledge import default_knowledge_base
from repro.logic.simplify import free_vars


@pytest.fixture(scope="module")
def kb():
    return default_knowledge_base()


class TestSpecSheets:
    @pytest.mark.parametrize("model", ["FF-100G-32P", "P4-100G-S16-32P"])
    def test_switch_roundtrip(self, kb, model):
        hardware = kb.hardware_model(model)
        text = spec_sheet_text(hardware)
        parsed = parse_spec_sheet(text, "switch")
        assert parsed.spec == hardware.spec

    @pytest.mark.parametrize("model", ["STD-100G-TS-IP", "DPU-100G-16C",
                                       "FPGA-100G-1000K", "OCP-25G-V"])
    def test_nic_roundtrip(self, kb, model):
        hardware = kb.hardware_model(model)
        parsed = parse_spec_sheet(spec_sheet_text(hardware), "nic")
        assert parsed.spec == hardware.spec

    @pytest.mark.parametrize("model", ["SRV-G2-64C-256G", "SRV-G3-128C-512G-CXL",
                                       "SRV-G0-8C-32G"])
    def test_server_roundtrip(self, kb, model):
        hardware = kb.hardware_model(model)
        parsed = parse_spec_sheet(spec_sheet_text(hardware), "server")
        assert parsed.spec == hardware.spec

    def test_full_catalog_roundtrip(self, kb):
        """The paper's 100%-accuracy claim, over all 200+ specs."""
        mismatches = 0
        for hardware in kb.hardware.values():
            parsed = parse_spec_sheet(
                spec_sheet_text(hardware), hardware.kind
            )
            if parsed.spec != hardware.spec:
                mismatches += 1
        assert mismatches == 0

    def test_missing_field_stays_default(self, kb):
        hardware = kb.hardware_model("FF-100G-32P")
        text = spec_sheet_text(hardware, missing_fields={"qcn"})
        parsed = parse_spec_sheet(text, "switch")
        assert parsed.spec.qcn is False  # schema default, not the truth
        assert parsed.spec.ports == hardware.spec.ports

    def test_bad_inputs(self):
        with pytest.raises(ExtractionError):
            parse_spec_sheet("", "switch")
        with pytest.raises(ExtractionError):
            parse_spec_sheet("X — spec", "toaster")

    def test_marketing_lines_ignored(self, kb):
        hardware = kb.hardware_model("STD-100G-TS-IP")
        text = spec_sheet_text(hardware, seed=3)
        parsed = parse_spec_sheet(text, "nic")
        assert parsed.spec == hardware.spec


class TestProseExtraction:
    def test_perfect_noise_recovers_requirements(self, kb):
        system = kb.system("Timely")
        record = extract_system(
            system_prose(system), "Timely", "congestion_control",
            noise=PERFECT,
        )
        got = free_vars(record.system.requires)
        want = free_vars(system.requires)
        assert got == want
        assert record.dropped_conditions == []

    def test_annulus_nuance_dropped_under_noise(self, kb):
        """§4.1 verbatim: the WAN/DC condition disappears."""
        system = kb.system("Annulus")
        noise = NoiseModel(p_miss_condition=1.0, p_miss_requirement=0.0,
                           p_wrong_number=0.0)
        record = extract_system(
            system_prose(system), "Annulus", "congestion_control", noise,
        )
        assert "ctx::competing_wan_dc_traffic" in record.dropped_conditions
        assert "ctx::competing_wan_dc_traffic" not in free_vars(
            record.system.requires
        )

    def test_solves_extracted(self, kb):
        system = kb.system("Simon")
        record = extract_system(
            system_prose(system), "Simon", "monitoring", PERFECT,
        )
        assert set(record.system.solves) == set(system.solves)

    def test_resources_extracted(self, kb):
        system = kb.system("Sonata")
        record = extract_system(
            system_prose(system), "Sonata", "monitoring", PERFECT,
        )
        kinds = {d.kind for d in record.system.resources}
        assert kinds == {d.kind for d in system.resources}
        stages = next(
            d for d in record.system.resources if d.kind == "p4_stages"
        )
        assert stages.fixed == 6

    def test_number_garbling(self, kb):
        system = kb.system("Sonata")
        noise = NoiseModel(p_wrong_number=1.0, p_miss_requirement=0.0,
                           p_miss_condition=0.0, wrong_number_factor=2.0)
        record = extract_system(
            system_prose(system), "Sonata", "monitoring", noise,
        )
        stages = next(
            d for d in record.system.resources if d.kind == "p4_stages"
        )
        assert stages.fixed == 12
        assert record.garbled_numbers

    def test_determinism(self, kb):
        system = kb.system("Swift")
        noise = NoiseModel(p_miss_condition=0.5, seed=42)
        first = extract_system(system_prose(system), "Swift",
                               "congestion_control", noise)
        second = extract_system(system_prose(system), "Swift",
                                "congestion_control", noise)
        assert free_vars(first.system.requires) == free_vars(
            second.system.requires
        )

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(p_miss_condition=1.5)


class TestChecker:
    def test_detects_missing_requirement(self, kb):
        """§4.2's Shenango/interrupt-polling example."""
        system = kb.system("Shenango")
        prose = system_prose(system)
        rng = random.Random(0)
        broken = None
        while broken is None:
            broken = inject_fault(system, FaultKind.MISSING_REQUIREMENT, rng)
        findings = EncodingChecker().check_system(broken, prose)
        assert any(f.kind == "missing_requirement" for f in findings)

    def test_detects_missing_condition(self, kb):
        system = kb.system("Annulus")
        prose = system_prose(system)
        broken = inject_fault(system, FaultKind.MISSING_CONDITION,
                              random.Random(0))
        assert broken is not None
        findings = EncodingChecker().check_system(broken, prose)
        assert any(f.kind == "missing_condition" for f in findings)

    def test_clean_encoding_is_quiet(self, kb):
        system = kb.system("Timely")
        findings = EncodingChecker().check_system(
            system, system_prose(system)
        )
        assert not [f for f in findings
                    if f.kind in ("missing_requirement", "missing_condition")]

    def test_small_number_fault_invisible(self, kb):
        """§4.2: magnitude blindness on plausible numbers."""
        system = kb.system("Sonata")
        prose = system_prose(system)
        broken = inject_fault(system, FaultKind.WRONG_NUMBER_SMALL,
                              random.Random(0))
        findings = EncodingChecker().check_system(broken, prose)
        assert not any(f.kind == "wrong_number" for f in findings)

    def test_large_number_fault_visible(self, kb):
        system = kb.system("Sonata")
        prose = system_prose(system)
        broken = inject_fault(system, FaultKind.WRONG_NUMBER_LARGE,
                              random.Random(0))
        findings = EncodingChecker().check_system(broken, prose)
        assert any(f.kind == "wrong_number" for f in findings)

    def test_detection_rate_asymmetry(self, kb):
        """The E3 headline: existence faults caught, small numeric missed."""
        systems = [
            s for s in kb.systems.values()
            if free_vars(s.requires) or any(d.fixed for d in s.resources)
        ]
        prose_of = {s.name: system_prose(s) for s in systems}
        cond_hit, cond_n = detection_rate(
            systems, prose_of, FaultKind.MISSING_CONDITION, trials=40,
        )
        small_hit, small_n = detection_rate(
            systems, prose_of, FaultKind.WRONG_NUMBER_SMALL, trials=40,
        )
        assert cond_n and small_n
        assert cond_hit / cond_n >= 0.9
        assert small_hit / small_n <= 0.1

    def test_ordering_objectivity(self):
        checker = EncodingChecker()
        uncited = Ordering("A", "B", "latency")
        findings = checker.check_ordering(uncited)
        assert any(f.kind == "uncited_ordering" for f in findings)
        subjective = Ordering("A", "B", "latency", source="paper",
                              subjective=True)
        findings = checker.check_ordering(subjective)
        assert any(f.kind == "subjective_ordering" for f in findings)

    def test_inject_fault_returns_none_when_impossible(self, kb):
        system = kb.system("Cubic")  # requires TRUE, no resources
        rng = random.Random(0)
        assert inject_fault(system, FaultKind.MISSING_CONDITION, rng) is None
        assert inject_fault(system, FaultKind.WRONG_NUMBER_LARGE, rng) is None
