"""Tests for per-system design justifications."""

from __future__ import annotations


from repro.core.design import DesignRequest
from repro.core.engine import ReasoningEngine
from repro.core.explain import explain_solution, explanation_text
from repro.kb.workload import Workload


def _request(**kwargs):
    defaults = dict(workloads=[Workload(
        name="app",
        objectives=["packet_processing", "detect_queue_length"],
    )])
    defaults.update(kwargs)
    return DesignRequest(**defaults)


class TestExplain:
    def test_unique_objectives_identified(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        request = _request()
        outcome = engine.synthesize(request)
        assert outcome.feasible
        justifications = {
            j.system: j
            for j in explain_solution(tiny_kb, request, outcome.solution)
        }
        monitor = justifications["Monitor"]
        assert monitor.unique_objectives == ["detect_queue_length"]

    def test_requirement_providers_traced(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        request = _request()
        outcome = engine.synthesize(request)
        justifications = {
            j.system: j
            for j in explain_solution(tiny_kb, request, outcome.solution)
        }
        providers = justifications["Monitor"].requirement_providers
        assert providers["nic::NIC_TIMESTAMPS"] == ["FancyNIC"]

    def test_shared_objectives(self, tiny_kb):
        from repro.kb.system import System

        tiny_kb.add_system(System(
            name="Monitor2", category="firewall",
            solves=["detect_queue_length"],
        ))
        engine = ReasoningEngine(tiny_kb)
        request = _request(required_systems=["Monitor", "Monitor2"])
        outcome = engine.synthesize(request)
        justifications = {
            j.system: j
            for j in explain_solution(tiny_kb, request, outcome.solution)
        }
        assert "detect_queue_length" in (
            justifications["Monitor"].shared_objectives
        )
        assert not justifications["Monitor"].unique_objectives or (
            "detect_queue_length"
            not in justifications["Monitor"].unique_objectives
        )

    def test_dimension_ranks_reported(self, tiny_kb):
        from repro.kb.ordering import Ordering

        tiny_kb.add_ordering(Ordering("StackB", "StackA", "speed",
                                      source="test"))
        engine = ReasoningEngine(tiny_kb)
        request = _request(optimize=["speed"])
        outcome = engine.synthesize(request)
        justifications = {
            j.system: j
            for j in explain_solution(tiny_kb, request, outcome.solution)
        }
        stack = next(
            j for name, j in justifications.items()
            if j.category == "network_stack"
        )
        assert "speed" in stack.dimension_ranks
        mine, rival = stack.dimension_ranks["speed"]
        assert mine == 0  # the optimizer picked a rank-0 stack

    def test_text_rendering(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        request = _request()
        outcome = engine.synthesize(request)
        text = explanation_text(tiny_kb, request, outcome.solution)
        assert "sole provider of: detect_queue_length" in text
        assert "needs nic::NIC_TIMESTAMPS <- FancyNIC" in text
