"""Unit tests for ``repro.par``: portfolio, cache, and batch queries.

Covers the three contract points the differential suites don't:

- **determinism** — the interleaved portfolio is a pure function of
  (instance, configs): same winner, same model, same conflict counts on
  every run, and immune to the global ``random`` module state (the
  solver keeps instance-level RNGs only);
- **cache semantics** — canonical keys, LRU bounds, hit/miss/eviction
  accounting, metrics mirroring, KB-fingerprint invalidation;
- **batch API** — ``check_many``/``synthesize_many`` agree with the
  sequential verbs, dedupe identical requests, and survive a real
  worker pool.
"""

from __future__ import annotations

import random

import pytest

from repro.obs import MetricsRegistry
from repro.par import (
    PortfolioConfig,
    QueryCache,
    cnf_cache_key,
    default_portfolio,
    request_cache_key,
    solve_portfolio,
)
from repro.sat import Solver
from tests.conftest import brute_force_sat


def _hard_instance(seed: int, num_vars: int = 40):
    rng = random.Random(f"par-instance-{seed}")
    clauses = []
    for _ in range(int(num_vars * 4.2)):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v * rng.choice([1, -1]) for v in variables])
    return num_vars, clauses


# -- determinism -------------------------------------------------------------


def test_interleaved_portfolio_is_deterministic():
    num_vars, clauses = _hard_instance(0)
    results = [
        solve_portfolio(num_vars, clauses, configs=default_portfolio(4))
        for _ in range(2)
    ]
    first, second = results
    assert first.satisfiable == second.satisfiable
    assert first.winner == second.winner
    assert first.conflicts == second.conflicts
    assert first.model == second.model
    assert first.stats == second.stats


def test_portfolio_ignores_global_random_state():
    """Seeding the global random module must not perturb the solver:
    all portfolio randomness flows through instance-level RNGs."""
    num_vars, clauses = _hard_instance(1)
    random.seed(12345)
    first = solve_portfolio(num_vars, clauses, configs=default_portfolio(4))
    random.seed(99999)
    second = solve_portfolio(num_vars, clauses, configs=default_portfolio(4))
    assert first.winner == second.winner
    assert first.conflicts == second.conflicts
    assert first.model == second.model


def test_solver_seed_gives_reproducible_runs():
    num_vars, clauses = _hard_instance(2)

    def run():
        solver = Solver(seed=7, random_phase=True)
        solver.new_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        verdict = solver.solve()
        return verdict, solver.stats.conflicts, solver.stats.decisions

    assert run() == run()


def test_solve_step_follows_solo_trajectory():
    """Interleaving whole restart segments must not change the search:
    stepping to completion equals one uninterrupted solve() call."""
    for seed in range(6):
        num_vars, clauses = _hard_instance(seed, num_vars=30)
        solo = Solver()
        solo.new_vars(num_vars)
        for clause in clauses:
            solo.add_clause(clause)
        expected = solo.solve()

        stepped = Solver()
        stepped.new_vars(num_vars)
        for clause in clauses:
            stepped.add_clause(clause)
        while True:
            result = stepped.solve_step()
            if result.satisfiable is not None:
                break
        assert result.satisfiable == expected
        assert stepped.stats.conflicts == solo.stats.conflicts
        assert stepped.stats.decisions == solo.stats.decisions


def test_process_mode_verdict_is_deterministic():
    num_vars, clauses = _hard_instance(3, num_vars=20)
    expected = brute_force_sat(
        num_vars, clauses
    ) if num_vars <= 20 else None
    verdicts = {
        solve_portfolio(
            num_vars, clauses, configs=default_portfolio(2), jobs=2
        ).satisfiable
        for _ in range(2)
    }
    assert len(verdicts) == 1
    if expected is not None:
        assert verdicts == {expected}


# -- portfolio construction --------------------------------------------------


def test_default_portfolio_reference_slot_and_seeds():
    configs = default_portfolio(6, base_seed=3)
    assert configs[0] == PortfolioConfig(name="default")
    seeds = [c.seed for c in configs[1:]]
    assert len(set(seeds)) == len(seeds), "slots must not share RNG streams"
    assert all(s is not None for s in seeds)


def test_default_portfolio_rejects_empty():
    with pytest.raises(ValueError):
        default_portfolio(0)


def test_portfolio_conflict_budget_exhaustion():
    """An unsatisfiable-but-hard instance under a tiny budget yields the
    indeterminate verdict rather than a wrong one."""
    # PHP(6,5): needs far more than 2 conflicts.
    holes, pigeons = 5, 6
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    cache = QueryCache()
    result = solve_portfolio(
        pigeons * holes, clauses, configs=default_portfolio(2),
        conflict_budget=2, cache=cache,
    )
    assert result.satisfiable is None
    assert len(cache) == 0, "indeterminate results must not be cached"


def test_portfolio_respects_assumptions():
    result = solve_portfolio(
        3, [[1, 2], [-1, 3]], assumptions=[-2],
        configs=default_portfolio(3),
    )
    assert result.satisfiable is True
    assert result.model[2] is False
    assert result.model[1] is True

    unsat = solve_portfolio(
        2, [[1, 2]], assumptions=[-1, -2], configs=default_portfolio(3),
    )
    assert unsat.satisfiable is False
    assert set(unsat.core) <= {-1, -2}


# -- cnf cache keys ----------------------------------------------------------


def test_cnf_cache_key_is_canonical():
    base = cnf_cache_key(3, [[1, -2], [2, 3]], [1])
    assert cnf_cache_key(3, [[2, 3], [-2, 1]], [1]) == base
    assert cnf_cache_key(3, [[1, -2], [3, 2]], [1]) == base
    assert cnf_cache_key(3, [[1, -2], [2, 3]], [-1]) != base
    assert cnf_cache_key(4, [[1, -2], [2, 3]], [1]) != base
    assert cnf_cache_key(3, [[1, -2]], [1]) != base


def test_cnf_cache_key_assumption_order_is_irrelevant():
    assert cnf_cache_key(2, [[1, 2]], [1, -2]) == cnf_cache_key(
        2, [[1, 2]], [-2, 1]
    )


def test_portfolio_cache_round_trip():
    num_vars, clauses = _hard_instance(4, num_vars=20)
    cache = QueryCache()
    cold = solve_portfolio(
        num_vars, clauses, configs=default_portfolio(2), cache=cache
    )
    warm = solve_portfolio(
        num_vars, clauses, configs=default_portfolio(2), cache=cache
    )
    assert not cold.from_cache
    assert warm.from_cache
    assert warm.satisfiable == cold.satisfiable
    assert warm.model == cold.model
    # The hit hands out copies: mutating them must not poison the cache.
    if warm.model is not None:
        warm.model[1] = not warm.model[1]
        again = solve_portfolio(
            num_vars, clauses, configs=default_portfolio(2), cache=cache
        )
        assert again.model == cold.model


# -- LRU cache ---------------------------------------------------------------


def test_cache_lru_eviction_order():
    cache = QueryCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["size"] == 2


def test_cache_counters_and_metrics_mirroring():
    metrics = MetricsRegistry()
    cache = QueryCache(maxsize=1, metrics=metrics, name="qc")
    cache.get("missing")
    cache.put("k", "v")
    cache.get("k")
    cache.put("k2", "v2")  # evicts "k"
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1
    assert metrics.counter("qc.hits") == 1
    assert metrics.counter("qc.misses") == 1
    assert metrics.counter("qc.evictions") == 1
    assert metrics.gauge("qc.size") == 1
    cache.clear()
    assert len(cache) == 0
    assert metrics.gauge("qc.size") == 0


def test_cache_rejects_nonpositive_maxsize():
    with pytest.raises(ValueError):
        QueryCache(maxsize=0)


# -- KB fingerprint and engine-level invalidation ----------------------------


def test_kb_fingerprint_changes_on_mutation(tiny_kb):
    from repro.kb.system import System
    from repro.logic.ast import TRUE

    before = tiny_kb.fingerprint()
    assert tiny_kb.fingerprint() == before, "fingerprint must be stable"
    version_before = tiny_kb.version
    tiny_kb.add_system(System(
        name="Extra", category="monitoring", solves=["detect_queue_length"],
        requires=TRUE,
    ))
    assert tiny_kb.version == version_before + 1
    assert tiny_kb.fingerprint() != before


def test_request_cache_key_tracks_kb_and_request(tiny_kb):
    from repro.core.design import DesignRequest
    from repro.kb.system import System
    from repro.kb.workload import Workload
    from repro.logic.ast import TRUE

    request = DesignRequest(workloads=[Workload(
        name="w", objectives=["packet_processing"]
    )])
    base = request_cache_key("check", tiny_kb, request)
    assert request_cache_key("check", tiny_kb, request) == base
    assert request_cache_key("synthesize", tiny_kb, request) != base
    other = DesignRequest(workloads=[Workload(
        name="w2", objectives=["packet_processing"]
    )])
    assert request_cache_key("check", tiny_kb, other) != base
    tiny_kb.add_system(System(
        name="Extra", category="monitoring", solves=["detect_queue_length"],
        requires=TRUE,
    ))
    assert request_cache_key("check", tiny_kb, request) != base


# -- engine integration ------------------------------------------------------


def _requests(tiny_kb):
    from repro.core.design import DesignRequest
    from repro.kb.workload import Workload

    return [
        DesignRequest(workloads=[Workload(
            name=f"w{i}", objectives=["packet_processing"],
        )])
        for i in range(3)
    ]


def test_engine_cache_hit_returns_same_outcome(tiny_kb):
    from repro.core.engine import ReasoningEngine

    cache = QueryCache()
    engine = ReasoningEngine(tiny_kb, cache=cache)
    request = _requests(tiny_kb)[0]
    cold = engine.check(request)
    warm = engine.check(request)
    assert warm.feasible == cold.feasible
    assert cache.stats()["hits"] >= 1
    synth_cold = engine.synthesize(request)
    synth_warm = engine.synthesize(request)
    assert synth_warm.feasible == synth_cold.feasible
    assert synth_warm.solution.systems == synth_cold.solution.systems


def test_engine_cache_invalidated_by_kb_mutation(tiny_kb):
    from repro.core.engine import ReasoningEngine
    from repro.kb.system import System
    from repro.logic.ast import TRUE

    cache = QueryCache()
    engine = ReasoningEngine(tiny_kb, cache=cache)
    request = _requests(tiny_kb)[0]
    engine.check(request)
    hits_before = cache.stats()["hits"]
    tiny_kb.add_system(System(
        name="Shadow", category="monitoring",
        solves=["detect_queue_length"], requires=TRUE,
    ))
    engine.check(request)  # new fingerprint -> recompute, not a stale hit
    assert cache.stats()["hits"] == hits_before
    assert cache.stats()["size"] == 2


def test_batch_matches_sequential(tiny_kb):
    from repro.core.engine import ReasoningEngine

    engine = ReasoningEngine(tiny_kb)
    requests = _requests(tiny_kb)
    sequential = [engine.check(r) for r in requests]
    batched = engine.check_many(requests)
    assert [o.feasible for o in batched] == [o.feasible for o in sequential]
    synth = engine.synthesize_many(requests[:2])
    assert [o.feasible for o in synth] == [
        engine.synthesize(r).feasible for r in requests[:2]
    ]


def test_batch_dedupes_identical_requests(tiny_kb):
    from repro.core.engine import ReasoningEngine
    from repro.obs import EngineObserver

    observer = EngineObserver()
    cache = QueryCache()
    engine = ReasoningEngine(tiny_kb, observer=observer, cache=cache)
    request = _requests(tiny_kb)[0]
    outcomes = engine.check_many([request, request, request])
    assert len(outcomes) == 3
    assert len({id(o) for o in outcomes}) == 1, "one computation, fanned out"
    assert observer.metrics.counter("queries.check") == 1


def test_batch_with_worker_pool(tiny_kb):
    from repro.core.engine import ReasoningEngine

    engine = ReasoningEngine(tiny_kb)
    requests = _requests(tiny_kb)
    sequential = [o.feasible for o in engine.check_many(requests, jobs=1)]
    pooled = [o.feasible for o in engine.check_many(requests, jobs=2)]
    assert pooled == sequential


def test_engine_wires_observer_metrics_into_cache(tiny_kb):
    from repro.core.engine import ReasoningEngine
    from repro.obs import EngineObserver

    observer = EngineObserver()
    cache = QueryCache(name="engine_cache")
    ReasoningEngine(tiny_kb, observer=observer, cache=cache)
    assert cache.metrics is observer.metrics


# ---------------------------------------------------------------------------
# Cube-and-conquer (repro.par.cubes)
# ---------------------------------------------------------------------------


def _random_3sat(num_vars, num_clauses, seed):
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        vs = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in vs])
    return clauses


def _php(holes):
    pigeons = holes + 1

    def var(p, h):
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


class TestMakeCubes:
    def test_complete_sign_enumeration(self):
        from repro.par import make_cubes
        from repro.sat import Solver

        solver = Solver()
        solver.new_vars(6)
        solver.add_clauses([[1, 2, 3], [-1, 4, 5], [2, -5, 6]])
        split_vars, cubes = make_cubes(solver, 3)
        assert len(split_vars) == 3
        assert len(cubes) == 8
        # Every sign combination over the split vars appears exactly once.
        combos = {tuple(lit > 0 for lit in cube) for cube in cubes}
        assert len(combos) == 8
        for cube in cubes:
            assert [abs(lit) for lit in cube] == split_vars

    def test_no_branchable_vars_yields_empty_cube(self):
        from repro.par import make_cubes
        from repro.sat import Solver

        solver = Solver()
        solver.new_vars(2)
        solver.add_clauses([[1], [2]])
        assert solver.solve() is True
        split_vars, cubes = make_cubes(solver, 3)
        assert split_vars == []
        assert cubes == [[]]


class TestSolveCubes:
    def test_unsat_php(self):
        from repro.par import solve_cubes

        num_vars, clauses = _php(5)
        # probe_conflicts=0 forces the cube sweep (the probe would
        # otherwise refute this small instance outright).
        result = solve_cubes(num_vars, clauses, k=3, probe_conflicts=0)
        assert result.satisfiable is False
        assert result.mode == "shared"
        assert result.cubes == 8

    def test_sat_model_is_valid(self):
        from repro.par import solve_cubes

        clauses = _random_3sat(40, 140, seed=2)
        result = solve_cubes(40, clauses, k=3, probe_conflicts=0)
        assert result.satisfiable is True
        model = result.model
        for clause in clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in clause)

    def test_probe_decides_easy_instances(self):
        from repro.par import solve_cubes

        result = solve_cubes(3, [[1], [1, 2], [-2, 3]])
        assert result.satisfiable is True
        assert result.mode == "probe"
        assert result.cubes == 0
        assert result.winner == -1

    def test_matches_sequential_verdicts(self):
        from repro.par import solve_cubes
        from repro.sat import Solver

        for seed in range(8):
            clauses = _random_3sat(30, 128, seed=seed)
            solver = Solver()
            solver.new_vars(30)
            solver.add_clauses(clauses)
            expected = solver.solve()
            result = solve_cubes(30, clauses, k=2, probe_conflicts=0)
            assert result.satisfiable == expected, seed
            if expected:
                model = result.model
                for clause in clauses:
                    assert any(
                        model[abs(lit)] == (lit > 0) for lit in clause
                    ), seed

    def test_unsat_core_excludes_cube_literals(self):
        from repro.par import solve_cubes

        # UNSAT only because of the assumptions: core must mention them
        # and never the internal split literals.
        clauses = [[-1, -2], [1, 3], [2, 4], [3, 4, 5], [-5, 6]]
        result = solve_cubes(
            6, clauses, assumptions=[1, 2], k=2, probe_conflicts=0
        )
        assert result.satisfiable is False
        assert set(result.core) <= {1, 2}
        assert result.core, "core must name the failing assumptions"

    def test_shared_mode_is_deterministic(self):
        from repro.par import solve_cubes

        clauses = _random_3sat(40, 170, seed=9)
        runs = [
            solve_cubes(40, clauses, k=3, probe_conflicts=64)
            for _ in range(2)
        ]
        assert runs[0].satisfiable == runs[1].satisfiable
        assert runs[0].conflicts == runs[1].conflicts
        assert runs[0].cubes == runs[1].cubes
        assert runs[0].split_vars == runs[1].split_vars
        assert runs[0].model == runs[1].model

    def test_process_mode_matches_shared(self):
        from repro.par import solve_cubes

        for seed in (3, 4):
            clauses = _random_3sat(30, 128, seed=seed)
            shared = solve_cubes(30, clauses, k=2, probe_conflicts=0)
            process = solve_cubes(
                30, clauses, k=2, probe_conflicts=0, jobs=2
            )
            assert process.satisfiable == shared.satisfiable, seed
            assert process.mode == "process"
            if process.satisfiable:
                model = process.model
                for clause in clauses:
                    assert any(
                        model[abs(lit)] == (lit > 0) for lit in clause
                    ), seed

    def test_cache_round_trip(self):
        from repro.par import solve_cubes

        cache = QueryCache()
        clauses = _random_3sat(25, 100, seed=6)
        cold = solve_cubes(25, clauses, k=2, cache=cache)
        warm = solve_cubes(25, clauses, k=2, cache=cache)
        assert not cold.from_cache
        assert warm.from_cache
        assert warm.satisfiable == cold.satisfiable
        assert warm.model == cold.model

    def test_conflict_budget_returns_unknown(self):
        from repro.par import solve_cubes

        num_vars, clauses = _php(6)
        result = solve_cubes(
            num_vars, clauses, k=2, probe_conflicts=0, conflict_budget=5
        )
        assert result.satisfiable is None

    def test_rejects_negative_k(self):
        from repro.par import solve_cubes

        with pytest.raises(ValueError):
            solve_cubes(2, [[1, 2]], k=-1)
