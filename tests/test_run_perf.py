"""Smoke test for the standalone benchmark driver."""

from __future__ import annotations

import json


def test_quick_run_writes_well_formed_report(tmp_path, capsys):
    from benchmarks.run_perf import main

    out = tmp_path / "BENCH_solver.json"
    assert main(["--quick", "--repeats", "1", "-o", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["benchmark"] == "solver-observability"
    assert report["quick"] is True
    workloads = report["workloads"]
    assert {
        "prototype_query", "solver_scaling", "tracer_overhead",
        "portfolio_batch", "query_cache", "incremental_whatif",
        "incremental_diagnose", "executor_dispatch",
        "propagate_microopt", "cube_and_conquer",
    } <= workloads.keys()
    for query in ("check", "synthesize"):
        result = workloads["prototype_query"][query]
        assert result["feasible"] is True
        assert result["elapsed_s"] > 0
        assert "compile" in result["phases_s"]
    rows = workloads["solver_scaling"]["instances"]
    assert rows, "scaling workload must solve at least one instance"
    for row in rows:
        assert row["solver"]["conflicts"] >= 0
        assert row["throughput"]["elapsed_s"] >= 0
    overhead = workloads["tracer_overhead"]
    assert overhead["bare_s"] > 0
    assert "overhead_pct" in overhead
    portfolio = workloads["portfolio_batch"]
    assert portfolio["configs"][0] == "default"
    assert portfolio["sequential_s"] > 0
    assert portfolio["portfolio_s"] > 0
    for row in portfolio["instances"]:
        assert row["satisfiable"] in (True, False)
        assert row["winner"] in portfolio["configs"]
    cache = workloads["query_cache"]
    for query in ("check", "synthesize"):
        assert cache[query]["cold_s"] > 0
        assert cache[query]["warm_s"] >= 0
    assert cache["cache"]["hits"] >= 2
    assert cache["cache"]["misses"] >= 2
    whatif = workloads["incremental_whatif"]
    assert whatif["queries"] >= 6
    assert whatif["fresh_s"] > 0 and whatif["session_s"] > 0
    assert whatif["session"]["compiles"] == 1
    diag = workloads["incremental_diagnose"]
    assert diag["queries"] >= 6
    assert diag["conflicts"] > 0
    assert diag["fresh_s"] > 0 and diag["session_s"] > 0
    assert diag["session"]["compiles"] == 1
    dispatch = workloads["executor_dispatch"]
    assert dispatch["direct_s"] > 0 and dispatch["ir_s"] > 0
    assert "overhead_pct" in dispatch
    propagate = workloads["propagate_microopt"]
    assert propagate["props_per_s"] > 0
    assert propagate["instances"]
    for row in propagate["instances"].values():
        assert row["props_per_s"] > 0
    cubes = workloads["cube_and_conquer"]
    assert cubes["satisfiable"] in (True, False)
    assert cubes["sequential_s"] > 0 and cubes["cube_s"] > 0
    assert cubes["conflict_speedup"] > 0


def test_committed_report_meets_acceptance():
    """The checked-in BENCH_solver.json records the acceptance numbers:
    portfolio wall-clock <= sequential on the batch, warm cache >= 10x
    faster than cold, the incremental what-if session >= 3x faster than
    fresh-engine-per-query on the 20-query sweep, the shared session
    >= 2x faster on the 20-query repeated-conflict diagnose sweep, the
    Query-IR dispatch layer < 5% over a direct cache probe, unit
    propagation >= 5x over the PR-3 pin on the v5 propagation-bound
    workload, and cube-and-conquer >= 2x over sequential solve with an
    identical verdict."""
    from benchmarks.run_perf import REPO_ROOT

    report = json.loads((REPO_ROOT / "BENCH_solver.json").read_text())
    assert report["version"] >= 5
    assert report["quick"] is False
    portfolio = report["workloads"]["portfolio_batch"]
    assert portfolio["portfolio_s"] <= portfolio["sequential_s"]
    cache = report["workloads"]["query_cache"]
    for query in ("check", "synthesize"):
        assert cache[query]["speedup"] >= 10
    whatif = report["workloads"]["incremental_whatif"]
    assert whatif["queries"] == 20
    assert whatif["speedup"] >= 3.0
    assert whatif["session"]["compiles"] == 1
    diag = report["workloads"]["incremental_diagnose"]
    assert diag["queries"] == 20
    assert diag["conflicts"] >= 10
    # Was >= 2.0 against the pre-arena solver; the arena rewrite (v5)
    # sped the *fresh-compile* side of this ratio up by ~35% while the
    # already-amortized session barely moved, so the session's edge
    # narrowed even though both absolute times improved.
    assert diag["speedup"] >= 1.5
    assert diag["session"]["compiles"] == 1
    dispatch = report["workloads"]["executor_dispatch"]
    assert dispatch["overhead_pct"] < 5.0
    propagate = report["workloads"]["propagate_microopt"]
    assert propagate["speedup_vs_baseline"] >= 5.0
    bin_chain = propagate["instances"]["bin_chain_100k"]
    assert bin_chain["speedup_vs_object_solver"] >= 5.0
    cubes = report["workloads"]["cube_and_conquer"]
    assert cubes["speedup"] >= 2.0
    assert cubes["conflict_speedup"] >= 2.0
