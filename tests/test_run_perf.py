"""Smoke test for the standalone benchmark driver."""

from __future__ import annotations

import json


def test_quick_run_writes_well_formed_report(tmp_path, capsys):
    from benchmarks.run_perf import main

    out = tmp_path / "BENCH_solver.json"
    assert main(["--quick", "--repeats", "1", "-o", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["benchmark"] == "solver-observability"
    assert report["quick"] is True
    workloads = report["workloads"]
    assert {"prototype_query", "solver_scaling", "tracer_overhead"} <= (
        workloads.keys()
    )
    for query in ("check", "synthesize"):
        result = workloads["prototype_query"][query]
        assert result["feasible"] is True
        assert result["elapsed_s"] > 0
        assert "compile" in result["phases_s"]
    rows = workloads["solver_scaling"]["instances"]
    assert rows, "scaling workload must solve at least one instance"
    for row in rows:
        assert row["solver"]["conflicts"] >= 0
        assert row["throughput"]["elapsed_s"] >= 0
    overhead = workloads["tracer_overhead"]
    assert overhead["bare_s"] > 0
    assert "overhead_pct" in overhead
