"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.sat.dimacs import write_dimacs


class TestStats:
    def test_stats_prints_counts(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "systems" in out
        assert "hardware" in out


class TestValidate:
    def test_validate_clean_kb(self, capsys):
        assert main(["validate"]) == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestExport:
    def test_export_stdout_is_json(self, capsys):
        assert main(["export"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["systems"]) > 50

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "kb.json"
        assert main(["export", "-o", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert len(payload["hardware"]) >= 200


class TestOrderings:
    def test_figure1_from_terminal(self, capsys):
        assert main(["orderings", "throughput",
                     "--ctx", "network_load_ge_40g"]) == 0
        out = capsys.readouterr().out
        assert "NetChannel > Linux" in out

    def test_no_active_edges(self, capsys):
        # 'fairness' has only context-conditioned edges; with no context
        # flags set, nothing is active.
        assert main(["orderings", "fairness"]) == 0
        assert "no active edges" in capsys.readouterr().out

    def test_feat_flag(self, capsys):
        assert main(["orderings", "throughput",
                     "--feat", "Snap::pony"]) == 0
        assert "Snap > ZygOS" in capsys.readouterr().out

    def test_unknown_dimension(self, capsys):
        assert main(["orderings", "vibes"]) == 2
        assert "unknown dimension" in capsys.readouterr().err


class TestSolve:
    def test_sat_instance(self, tmp_path, capsys):
        cnf = tmp_path / "sat.cnf"
        cnf.write_text(write_dimacs(2, [[1, 2], [-1]]))
        assert main(["solve", str(cnf)]) == 10
        out = capsys.readouterr().out
        assert "s SATISFIABLE" in out
        assert "v " in out

    def test_unsat_instance(self, tmp_path, capsys):
        cnf = tmp_path / "unsat.cnf"
        cnf.write_text(write_dimacs(1, [[1], [-1]]))
        assert main(["solve", str(cnf)]) == 20
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_proof_emitted_and_verifies(self, tmp_path, capsys):
        from repro.sat.dimacs import parse_dimacs
        from repro.sat.drat import Proof, check_rup_proof

        cnf = tmp_path / "unsat.cnf"
        clauses = [[1, 2], [-1, 2], [1, -2], [-1, -2]]
        cnf.write_text(write_dimacs(2, clauses))
        proof_path = tmp_path / "proof.drat"
        assert main(["solve", str(cnf), "--proof", str(proof_path)]) == 20
        text = proof_path.read_text()
        steps = []
        for line in text.splitlines():
            toks = line.split()
            if toks[0] == "d":
                steps.append(("d", [int(t) for t in toks[1:-1]]))
            else:
                steps.append(("a", [int(t) for t in toks[:-1]]))
        assert check_rup_proof(clauses, Proof(steps=steps))

    def test_model_satisfies(self, tmp_path, capsys):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [2]]
        cnf = tmp_path / "x.cnf"
        cnf.write_text(write_dimacs(3, clauses))
        assert main(["solve", str(cnf)]) == 10
        line = [
            ln for ln in capsys.readouterr().out.splitlines()
            if ln.startswith("v ")
        ][0]
        lits = {int(tok) for tok in line[2:].split() if tok != "0"}
        for clause in clauses:
            assert any(lit in lits for lit in clause)


class TestPlan:
    def _request_payload(self):
        return {
            "workloads": [{
                "name": "app",
                "objectives": ["packet_processing", "bandwidth_allocation"],
                "peak_cores": 64,
            }],
            "context": {"datacenter_fabric": True},
            "inventory": {
                "SRV-G2-64C-256G": 16,
                "STD-100G-TS-IP": 64,
                "FF-100G-32P": 4,
            },
            "optimize": ["capex_usd"],
        }

    def test_plan_feasible(self, tmp_path, capsys):
        import json

        path = tmp_path / "request.json"
        path.write_text(json.dumps(self._request_payload()))
        assert main(["plan", str(path)]) == 0
        out = capsys.readouterr().out
        assert "VERDICT: feasible." in out
        assert "Bill of materials:" in out

    def test_plan_with_explanations(self, tmp_path, capsys):
        import json

        path = tmp_path / "request.json"
        path.write_text(json.dumps(self._request_payload()))
        assert main(["plan", str(path), "--explain"]) == 0
        assert "Justifications" in capsys.readouterr().out

    def test_plan_infeasible_exit_code(self, tmp_path, capsys):
        import json

        payload = self._request_payload()
        payload["workloads"][0]["objectives"].append("teleportation")
        path = tmp_path / "request.json"
        path.write_text(json.dumps(payload))
        assert main(["plan", str(path)]) == 3
        assert "no compliant design exists" in capsys.readouterr().out


def _stream_payload(**overrides):
    payload = {
        "workloads": [{
            "name": "app",
            "objectives": ["packet_processing", "bandwidth_allocation"],
            "peak_cores": 64,
        }],
        "context": {"datacenter_fabric": True},
        "inventory": {
            "SRV-G2-64C-256G": 16,
            "STD-100G-TS-IP": 64,
            "FF-100G-32P": 4,
        },
    }
    payload.update(overrides)
    return payload


def _write_stream(tmp_path, *payloads):
    paths = []
    for i, payload in enumerate(payloads):
        path = tmp_path / f"req{i}.json"
        path.write_text(json.dumps(payload))
        paths.append(str(path))
    return paths


class TestWhatif:
    def test_stream_on_one_session(self, tmp_path, capsys):
        paths = _write_stream(
            tmp_path,
            _stream_payload(),
            _stream_payload(budgets={"capex_usd": 1}),
        )
        assert main(["whatif", "--check", "--stats", *paths]) == 3
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert lines[0].startswith(f"{paths[0]}: feasible [")
        assert "conflict:" in lines[1]
        assert "INFEASIBLE" in lines[1]
        stats = dict(
            line[2:].split(": ", 1)
            for line in captured.err.splitlines()
            if line.startswith("# ")
        )
        assert stats["compiles"] == "1"
        assert stats["queries"] == "2"

    def test_all_feasible_exits_zero(self, tmp_path, capsys):
        paths = _write_stream(tmp_path, _stream_payload())
        assert main(["whatif", "--check", *paths]) == 0
        assert "feasible" in capsys.readouterr().out


class TestDiagnose:
    def test_feasible_stream_exits_zero(self, tmp_path, capsys):
        paths = _write_stream(tmp_path, _stream_payload())
        assert main(["diagnose", *paths]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"{paths[0]}: feasible [")
        assert "INFEASIBLE" not in out

    def test_conflict_is_reported_with_explanation(self, tmp_path, capsys):
        infeasible = _stream_payload(budgets={"capex_usd": 1})
        paths = _write_stream(tmp_path, _stream_payload(), infeasible)
        assert main(["diagnose", "--explain", "--stats", *paths]) == 3
        captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert lines[0].startswith(f"{paths[0]}: feasible [")
        assert "INFEASIBLE" in lines[1]
        assert "budget:capex_usd" in lines[1]
        # --explain indents the human-readable breakdown underneath.
        assert any(line.startswith("  ") for line in lines[2:])
        stats = dict(
            line[2:].split(": ", 1)
            for line in captured.err.splitlines()
            if line.startswith("# ")
        )
        assert stats["compiles"] == "1"


class TestRequestRoundtrip:
    def test_design_request_json_roundtrip(self):
        from repro.core.design import DesignRequest
        from repro.kb.workload import Workload

        request = DesignRequest(
            workloads=[Workload(name="w", objectives=["x"], peak_cores=3)],
            context={"a": True},
            given_properties=["site::RESEARCH_OK"],
            candidate_systems=["Linux"],
            required_systems=["Linux"],
            budgets={"capex_usd": 10},
            optimize=["latency"],
            include_common_sense=False,
        )
        clone = DesignRequest.from_dict(request.to_dict())
        assert clone.to_dict() == request.to_dict()
        assert clone.exclusive_categories == request.exclusive_categories


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestProfileFlags:
    def _request_path(self, tmp_path):
        payload = {
            "workloads": [{
                "name": "app",
                "objectives": ["packet_processing", "bandwidth_allocation"],
                "peak_cores": 64,
            }],
            "context": {"datacenter_fabric": True},
            "inventory": {
                "SRV-G2-64C-256G": 16,
                "STD-100G-TS-IP": 64,
                "FF-100G-32P": 4,
            },
            "optimize": ["capex_usd"],
        }
        path = tmp_path / "request.json"
        path.write_text(json.dumps(payload))
        return path

    def test_plan_profile_prints_breakdown(self, tmp_path, capsys):
        path = self._request_path(tmp_path)
        assert main(["plan", str(path), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Phase breakdown" in out
        for phase in ("compile", "solve", "optimize"):
            assert phase in out
        assert "Solver" in out
        assert "conflicts" in out

    def test_plan_without_profile_is_clean(self, tmp_path, capsys):
        path = self._request_path(tmp_path)
        assert main(["plan", str(path)]) == 0
        assert "Phase breakdown" not in capsys.readouterr().out

    def test_solve_profile_prints_breakdown(self, tmp_path, capsys):
        cnf = tmp_path / "f.cnf"
        cnf.write_text(write_dimacs(2, [[1, 2], [-1], [-2]]))
        assert main(["solve", str(cnf), "--profile"]) == 20
        out = capsys.readouterr().out
        assert "s UNSATISFIABLE" in out
        assert "Phase breakdown" in out
        assert "Solver" in out

    def test_stats_json_is_metrics_registry_shape(self, capsys):
        assert main(["stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {"counters", "gauges", "observations"} <= payload.keys()
        assert payload["gauges"]["kb.systems"] > 50
        assert payload["gauges"]["kb.hardware"] >= 200
