"""Correctness tests for the SatELite-style CNF preprocessing passes.

The load-bearing property is *equisatisfiability with model
reconstruction*: for any input CNF, preprocessing must preserve the
verdict, and a model of the simplified formula must extend — via the
elimination stack — to a model of the **original** clauses. Frozen
variables must survive every pass so assumption literals, cached circuit
outputs, and unsat cores stay meaningful.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SolverStateError
from repro.sat.preprocess import (
    preprocess_clauses,
    preprocess_solver,
    reconstruct_model,
)
from repro.sat.solver import Solver


def _random_3sat(num_vars: int, num_clauses: int, rng: random.Random):
    clauses = []
    for _ in range(num_clauses):
        vs = rng.sample(range(1, num_vars + 1), min(3, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in vs])
    return clauses


def _solve(num_vars: int, clauses) -> tuple[bool, dict[int, bool] | None]:
    solver = Solver()
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    if solver.solve():
        return True, solver.model()
    return False, None


def _check_model(clauses, model: dict[int, bool]) -> bool:
    return all(
        any(model.get(abs(lit), False) == (lit > 0) for lit in clause)
        for clause in clauses
    )


# -- differential fuzz -------------------------------------------------------------


def test_differential_fuzz_preprocess_clauses():
    """>= 200 random instances: verdict preserved, reconstructed models
    satisfy the original clauses."""
    rng = random.Random(20240826)
    mismatches = 0
    for trial in range(220):
        num_vars = rng.randint(4, 22)
        ratio = rng.uniform(2.0, 5.5)
        clauses = _random_3sat(num_vars, int(ratio * num_vars) + 1, rng)
        expected, _ = _solve(num_vars, clauses)
        result = preprocess_clauses(num_vars, clauses)
        if result.contradiction:
            got = False
        else:
            simplified = [[u] for u in result.units] + result.clauses
            got, model = _solve(num_vars, simplified)
            if got:
                full = reconstruct_model(model, result.eliminated)
                assert _check_model(clauses, full), (
                    f"trial {trial}: reconstructed model violates originals"
                )
        if got != expected:
            mismatches += 1
    assert mismatches == 0


def test_differential_fuzz_preprocess_solver_in_place():
    """In-place preprocessing of a loaded solver answers identically and
    its models (after internal reconstruction) satisfy the originals."""
    rng = random.Random(77)
    for trial in range(200):
        num_vars = rng.randint(4, 20)
        clauses = _random_3sat(num_vars, int(4.0 * num_vars) + 1, rng)
        expected, _ = _solve(num_vars, clauses)
        solver = Solver()
        solver.new_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        preprocess_solver(solver)
        got = solver.solve()
        assert got == expected, f"trial {trial}: verdict flipped"
        if got:
            assert _check_model(clauses, solver.model()), (
                f"trial {trial}: model violates original clauses"
            )


# -- specific passes ---------------------------------------------------------------


def test_subsumed_clause_is_removed():
    result = preprocess_clauses(3, [[1, 2], [1, 2, 3]], frozen=[1, 2, 3])
    assert result.stats.subsumed >= 1
    assert [1, 2] in result.clauses
    assert all(sorted(c) != [1, 2, 3] for c in result.clauses)


def test_self_subsuming_resolution_strengthens():
    # (1 2) and (1 -2 3): resolving on 2 gives (1 3) which replaces the
    # second clause.
    result = preprocess_clauses(3, [[1, 2], [1, -2, 3]], frozen=[1, 2, 3])
    assert result.stats.strengthened >= 1
    assert sorted(map(sorted, result.clauses)) == [[1, 2], [1, 3]]


def test_variable_elimination_with_reconstruction():
    # Var 2 occurs once positively and once negatively: eliminated, with
    # resolvent (1 3).
    clauses = [[1, 2], [-2, 3]]
    result = preprocess_clauses(3, clauses, frozen=[1, 3])
    assert result.stats.eliminated_vars == 1
    assert [v for v, _ in result.eliminated] == [2]
    simplified = [[u] for u in result.units] + result.clauses
    sat, model = _solve(3, simplified)
    assert sat
    full = reconstruct_model(model, result.eliminated)
    assert 2 in full
    assert _check_model(clauses, full)


def test_pure_literal_elimination():
    # Var 3 occurs only positively: zero resolvents, clauses just drop.
    result = preprocess_clauses(3, [[1, 3], [2, 3]], frozen=[1, 2])
    assert result.stats.eliminated_vars >= 1
    sat, model = _solve(3, [[u] for u in result.units] + result.clauses)
    assert sat
    full = reconstruct_model(model, result.eliminated)
    assert _check_model([[1, 3], [2, 3]], full)


def test_contradiction_detected():
    result = preprocess_clauses(1, [[1], [-1]])
    assert result.contradiction


def test_frozen_variables_never_eliminated():
    rng = random.Random(5)
    for _ in range(50):
        num_vars = rng.randint(5, 15)
        clauses = _random_3sat(num_vars, 3 * num_vars, rng)
        frozen = rng.sample(range(1, num_vars + 1), 3)
        result = preprocess_clauses(num_vars, clauses, frozen=frozen)
        eliminated = {v for v, _ in result.eliminated}
        assert not eliminated & set(frozen)


# -- solver integration ------------------------------------------------------------


def test_assumptions_on_frozen_vars_and_valid_cores():
    """Selector-style assumptions survive preprocessing: querying under
    them gives the same verdicts as an unpreprocessed solver, and unsat
    cores only name assumption literals."""
    rng = random.Random(11)
    for _ in range(40):
        num_vars = rng.randint(6, 16)
        clauses = _random_3sat(num_vars, int(4.2 * num_vars), rng)
        selectors = rng.sample(range(1, num_vars + 1), 3)

        plain = Solver()
        plain.new_vars(num_vars)
        pre = Solver()
        pre.new_vars(num_vars)
        for clause in clauses:
            plain.add_clause(clause)
            pre.add_clause(clause)
        preprocess_solver(pre, frozen=selectors)

        for signs in ((1, 1, 1), (1, -1, 1), (-1, -1, -1)):
            assumptions = [s * v for s, v in zip(signs, selectors)]
            expected = plain.solve(assumptions)
            assert pre.solve(assumptions) == expected
            if not expected:
                core = pre.unsat_core()
                assert set(core) <= set(assumptions)
                # The core really is unsatisfiable on the original CNF.
                recheck = Solver()
                recheck.new_vars(num_vars)
                for clause in clauses:
                    recheck.add_clause(clause)
                assert not recheck.solve(list(core))


def test_eliminated_vars_are_rejected_in_new_clauses_and_assumptions():
    clauses = [[1, 2], [-2, 3]]
    solver = Solver()
    solver.new_vars(3)
    for clause in clauses:
        solver.add_clause(clause)
    preprocess_solver(solver, frozen=[1, 3])
    assert 2 in solver.eliminated_vars
    with pytest.raises(SolverStateError):
        solver.add_clause([2, 3])
    with pytest.raises(SolverStateError):
        solver.solve([2])


def test_preprocess_refuses_proof_logging():
    solver = Solver(proof_logging=True)
    solver.new_vars(2)
    solver.add_clause([1, 2])
    with pytest.raises(SolverStateError):
        preprocess_solver(solver)


def test_preprocess_preserves_incremental_use():
    """Clauses added after preprocessing (over frozen vars) behave
    normally — the session's request-grounding pattern."""
    rng = random.Random(3)
    clauses = _random_3sat(12, 40, rng)
    frozen = [1, 2, 3, 4]
    solver = Solver()
    solver.new_vars(12)
    for clause in clauses:
        solver.add_clause(clause)
    preprocess_solver(solver, frozen=frozen)
    guard = solver.new_var()
    solver.add_clause([-guard, 1])
    solver.add_clause([-guard, -2])
    plain = Solver()
    plain.new_vars(12)
    for clause in clauses:
        plain.add_clause(clause)
    assert solver.solve([guard]) == plain.solve([1, -2])
    assert solver.solve([-guard]) == plain.solve([])
