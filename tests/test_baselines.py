"""Tests for the baseline reasoners (greedy LLM stand-in, exhaustive)."""

from __future__ import annotations

import pytest

from repro.baselines import ExhaustiveReasoner, GreedyReasoner
from repro.core.design import DesignRequest
from repro.core.engine import ReasoningEngine
from repro.errors import QueryError
from repro.kb.dsl import ctx, prop
from repro.kb.hardware import Hardware, NICSpec, ServerSpec, SwitchSpec
from repro.kb.ordering import Ordering
from repro.kb.registry import KnowledgeBase
from repro.kb.system import System
from repro.kb.workload import Workload


def _boolean_kb() -> KnowledgeBase:
    """A resource-free KB for exhaustive cross-checking."""
    kb = KnowledgeBase()
    kb.add_system(System(name="S1", category="network_stack",
                         solves=["packet_processing"]))
    kb.add_system(System(name="S2", category="network_stack",
                         solves=["packet_processing"],
                         requires=prop("nic", "INTERRUPT_POLLING")))
    kb.add_system(System(name="M1", category="monitoring",
                         solves=["telemetry"], conflicts=["S1"]))
    kb.add_system(System(name="M2", category="monitoring",
                         solves=["telemetry"],
                         requires=ctx("allowed")))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="N", rate_gbps=25, power_w=5, cost_usd=100,
                     interrupt_polling=True),
    ))
    return kb


class TestExhaustive:
    def test_agrees_with_sat_engine(self):
        kb = _boolean_kb()
        engine = ReasoningEngine(kb)
        exhaustive = ExhaustiveReasoner(kb)
        scenarios = [
            DesignRequest(workloads=[Workload(
                name="w", objectives=["packet_processing"])]),
            DesignRequest(workloads=[Workload(
                name="w", objectives=["packet_processing", "telemetry"])]),
            DesignRequest(
                workloads=[Workload(
                    name="w",
                    objectives=["packet_processing", "telemetry"])],
                forbidden_systems=["S2", "M2"],
            ),
            DesignRequest(
                workloads=[Workload(
                    name="w",
                    objectives=["packet_processing", "telemetry"])],
                forbidden_systems=["S2"],
                context={"allowed": True},
            ),
        ]
        for request in scenarios:
            sat_verdict = engine.check(request).feasible
            brute_verdict = exhaustive.answer(request).feasible
            assert sat_verdict == brute_verdict, request

    def test_find_all_counts_solutions(self):
        kb = _boolean_kb()
        request = DesignRequest(workloads=[Workload(
            name="w", objectives=["packet_processing"])])
        result = ExhaustiveReasoner(kb).answer(request, find_all=True)
        deployments = {tuple(sorted(s)) for s in result.solutions}
        # S1 or S2 alone; each optionally + M2 is blocked (ctx false),
        # M1 conflicts with S1 but can join S2.
        assert ("S1",) in deployments
        assert ("S2",) in deployments
        assert ("M1", "S2") in deployments
        assert ("M1", "S1") not in deployments

    def test_rejects_resource_kbs(self, resource_kb):
        request = DesignRequest(
            workloads=[Workload(name="w", objectives=["packet_processing"])],
        )
        with pytest.raises(QueryError):
            ExhaustiveReasoner(resource_kb).answer(request)


class TestGreedy:
    def _greedy_kb(self) -> KnowledgeBase:
        kb = _boolean_kb()
        kb.add_hardware(Hardware(
            spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=300,
                            cost_usd=4000),
            max_units=16,
        ))
        kb.add_hardware(Hardware(
            spec=SwitchSpec(model="Sw", port_gbps=100, ports=32,
                            memory_mb=16, power_w=200, cost_usd=9000),
        ))
        return kb

    def test_core_arithmetic_is_correct(self):
        """§5.2: aggregate resource questions are the part LLMs get right."""
        kb = self._greedy_kb()
        greedy = GreedyReasoner(kb)
        request = DesignRequest(workloads=[Workload(
            name="w", objectives=["packet_processing"], peak_cores=100)])
        answer = greedy.answer(request)
        assert answer.feasible
        assert answer.hardware.get("Box", 0) == 4  # ceil(100/32)

    def test_capacity_limit_detected(self):
        kb = self._greedy_kb()
        greedy = GreedyReasoner(kb)
        request = DesignRequest(workloads=[Workload(
            name="w", objectives=["packet_processing"],
            peak_cores=16 * 32 + 1)])
        assert not greedy.answer(request).feasible

    def test_unsolvable_objective(self):
        kb = self._greedy_kb()
        request = DesignRequest(workloads=[Workload(
            name="w", objectives=["quantum_teleport"])])
        assert not GreedyReasoner(kb).answer(request).feasible

    def test_context_blindness_on_orderings(self):
        """The §5.2 failure: conditional orderings applied unconditionally."""
        kb = self._greedy_kb()
        # S1 beats S2 only above 40G; the greedy reasoner believes it always.
        kb.add_ordering(Ordering("S2", "S1", "throughput",
                                 condition=ctx("network_load_ge_40g"),
                                 source="test"))
        greedy = GreedyReasoner(kb)
        request = DesignRequest(
            workloads=[Workload(name="w", objectives=["packet_processing"])],
            context={"network_load_ge_40g": False},
        )
        answer = greedy.answer(request)
        # It picks S2 (the conditional winner) even though the condition
        # is false — demonstrating the blindness the engine avoids.
        assert "S2" in answer.systems

    def test_misses_conflict_interactions(self):
        """Greedy never checks cross-system conflicts."""
        kb = self._greedy_kb()
        greedy = GreedyReasoner(kb)
        request = DesignRequest(
            workloads=[Workload(
                name="w", objectives=["packet_processing", "telemetry"])],
            context={"allowed": False},
            forbidden_systems=["M2"],
        )
        answer = greedy.answer(request)
        if answer.feasible and "M1" in answer.systems and "S1" in answer.systems:
            # Greedy deployed a conflicting pair: the SAT engine refuses.
            engine = ReasoningEngine(kb)
            verdict = engine.check(request, deploy=answer.systems)
            assert not verdict.feasible
        else:
            # If greedy dodged it by luck, the test setup is stale.
            pytest.fail(f"expected greedy to pick the conflicting pair, "
                        f"got {answer}")
