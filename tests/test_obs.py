"""Tests for the observability layer (``repro.obs``).

Covers the span tracer (nesting, threads, exceptions, disabled mode),
the solver progress recorder against a real solver, the metrics
registry's JSON export, the engine integration (canonical phase spans
from a real query), and the ``--profile`` renderers.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.engine import ReasoningEngine
from repro.obs import (
    EngineObserver,
    LatencyHistogram,
    MetricsRegistry,
    NULL_TRACER,
    ProgressRecorder,
    Tracer,
    render_phase_breakdown,
    render_profile,
    render_solver_progress,
)
from repro.sat import Solver


def _php_clauses(holes: int) -> tuple[int, list[list[int]]]:
    """PHP(holes+1, holes): conflict-heavy and unsatisfiable."""
    pigeons = holes + 1

    def var(p, h):
        return p * holes + h + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return pigeons * holes, clauses


class TestTracer:
    def test_nested_spans_record_paths_and_depths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        paths = [r.path for r in tracer.records]
        assert paths.count("outer/inner") == 2
        assert "outer" in paths
        outer = next(r for r in tracer.records if r.path == "outer")
        assert outer.depth == 0
        assert all(
            r.depth == 1 for r in tracer.records if r.path == "outer/inner"
        )

    def test_breakdown_aggregates_by_path(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                time.sleep(0.001)
        slot = tracer.breakdown()["phase"]
        assert slot["calls"] == 3
        assert slot["total_s"] >= 0.003

    def test_phase_totals_do_not_double_count_recursion(self):
        tracer = Tracer()
        with tracer.span("solve"):
            time.sleep(0.002)
            with tracer.span("solve"):
                time.sleep(0.002)
        outer = next(r for r in tracer.records if r.depth == 0)
        # The nested same-named span must not be added on top of its
        # enclosing span's time.
        assert tracer.phase_totals()["solve"] == pytest.approx(
            outer.duration_s
        )

    def test_span_records_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert [r.name for r in tracer.records] == ["boom"]
        # The stack unwound: a new span is top-level again.
        with tracer.span("after"):
            pass
        assert tracer.records[-1].depth == 0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            with tracer.span("y"):
                pass
        assert tracer.records == []
        assert tracer.phase_totals() == {}
        assert NULL_TRACER.records == []

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        errors: list[str] = []

        def work(name: str) -> None:
            for _ in range(50):
                with tracer.span(name):
                    with tracer.span("child"):
                        pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Each thread's children nest under its own root, never a sibling's.
        child_paths = {r.path for r in tracer.records if r.name == "child"}
        assert child_paths == {f"t{i}/child" for i in range(4)}
        assert len(tracer.records) == 4 * 50 * 2

    def test_reset_and_json_roundtrip(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        payload = json.loads(tracer.to_json())
        assert payload["phase_totals"].keys() == {"a"}
        tracer.reset()
        assert tracer.records == []


class TestProgressRecorder:
    def test_real_solver_emits_samples_restarts_and_final(self):
        num_vars, clauses = _php_clauses(6)
        recorder = ProgressRecorder()
        solver = Solver(progress_callback=recorder, progress_interval=64)
        solver.new_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is False
        assert len(recorder.finals) == 1
        assert recorder.restarts, "PHP(7,6) must restart at least once"
        assert recorder.samples, "interval samples expected"
        final = recorder.finals[0]
        assert final.conflicts == solver.stats.conflicts
        assert final.elapsed_s > 0
        assert recorder.peak_trail_depth() > 0
        assert recorder.peak_learnt_db() > 0
        timeline = recorder.restart_timeline()
        assert [e["conflicts"] for e in timeline] == sorted(
            e["conflicts"] for e in timeline
        )

    def test_throughput_pools_multiple_solve_calls(self):
        recorder = ProgressRecorder()
        solver = Solver(progress_callback=recorder, progress_interval=64)
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        assert solver.solve()
        assert solver.solve([-a])
        assert len(recorder.finals) == 2
        rates = recorder.throughput()
        assert rates["elapsed_s"] > 0
        assert rates["propagations_per_s"] >= 0

    def test_rates_reflect_per_call_work_not_lifetime(self):
        # After a heavy first call, a trivial second call must not report
        # the lifetime conflict count as if it happened in microseconds.
        num_vars, clauses = _php_clauses(5)
        recorder = ProgressRecorder()
        solver = Solver(progress_callback=recorder, progress_interval=64)
        solver.new_vars(num_vars)
        extra = solver.new_var()
        for clause in clauses:
            solver.add_clause([extra] + clause)
        assert solver.solve([-extra]) is False
        heavy = recorder.finals[-1]
        assert solver.solve([extra]) is True
        trivial = recorder.finals[-1]
        assert heavy.conflicts > 0
        trivial_conflicts = trivial.conflicts_per_s * trivial.elapsed_s
        assert trivial_conflicts < 1.0  # no conflicts happened in call 2

    def test_reset(self):
        recorder = ProgressRecorder()
        solver = Solver(progress_callback=recorder)
        a = solver.new_var()
        solver.add_clause([a])
        solver.solve()
        assert len(recorder)
        recorder.reset()
        assert len(recorder) == 0
        assert recorder.last is None


class TestMetricsRegistry:
    def test_counters_gauges_observations(self):
        m = MetricsRegistry()
        m.incr("queries")
        m.incr("queries", 2)
        m.set_gauge("depth", 7)
        for v in (1.0, 3.0):
            m.observe("seconds", v)
        data = m.as_dict()
        assert data["counters"]["queries"] == 3
        assert data["gauges"]["depth"] == 7
        summary = data["observations"]["seconds"]
        assert summary["count"] == 2
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0 and summary["max"] == 3.0

    def test_negative_increment_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.incr("x", -1)

    def test_merge_dict_takes_numbers_only(self):
        m = MetricsRegistry()
        m.merge_dict("solver", {"conflicts": 5, "note": "hi", "flag": True})
        gauges = m.as_dict()["gauges"]
        assert gauges == {"solver.conflicts": 5}

    def test_to_json_is_valid(self):
        m = MetricsRegistry()
        m.incr("a")
        payload = json.loads(m.to_json())
        assert payload["counters"]["a"] == 1

    def test_thread_safety_of_incr(self):
        m = MetricsRegistry()

        def work():
            for _ in range(1000):
                m.incr("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.as_dict()["counters"]["n"] == 4000


class TestLatencyHistogramMerge:
    def test_merge_combines_counts_totals_and_extrema(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in (0.001, 0.004, 0.1):
            a.observe(v)
        for v in (0.002, 2.0):
            b.observe(v)
        merged = LatencyHistogram()
        for v in (0.001, 0.004, 0.1, 0.002, 2.0):
            merged.observe(v)
        a.merge(b)
        assert a.count == merged.count == 5
        assert a.total == pytest.approx(merged.total)
        assert a.min == merged.min and a.max == merged.max
        assert a.counts == merged.counts
        assert a.as_dict() == merged.as_dict()

    def test_merge_returns_self_and_chains(self):
        a, b, c = (LatencyHistogram() for _ in range(3))
        b.observe(0.01)
        c.observe(0.02)
        assert a.merge(b).merge(c) is a
        assert a.count == 2

    def test_merge_with_empty_is_identity(self):
        a, empty = LatencyHistogram(), LatencyHistogram()
        a.observe(0.5)
        before = a.as_dict()
        a.merge(empty)
        assert a.as_dict() == before
        # Merging into an empty histogram copies the extrema over.
        empty.merge(a)
        assert empty.min == a.min and empty.max == a.max

    def test_merge_rejects_mismatched_geometry(self):
        a = LatencyHistogram()
        b = LatencyHistogram(start=0.1, stop=1.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_state_roundtrip(self):
        a = LatencyHistogram()
        for v in (0.003, 0.2, 70.0):  # includes the overflow bucket
            a.observe(v)
        back = LatencyHistogram.from_state(
            json.loads(json.dumps(a.to_state()))
        )
        assert back.as_dict() == a.as_dict()
        back.observe(0.004)  # reconstructed histograms stay usable
        assert back.count == 4

    def test_empty_state_roundtrip_preserves_sentinel_min(self):
        back = LatencyHistogram.from_state(LatencyHistogram().to_state())
        assert back.count == 0
        assert back.min == float("inf")
        back.observe(0.25)
        assert back.min == 0.25

    def test_registry_histogram_states(self):
        m = MetricsRegistry()
        m.observe_histogram("latency.check", 0.02)
        m.observe_histogram("latency.check", 0.04)
        states = m.histogram_states()
        rebuilt = LatencyHistogram.from_state(states["latency.check"])
        assert rebuilt.count == 2
        assert rebuilt.as_dict() == m.histogram("latency.check").as_dict()


class TestEngineIntegration:
    def test_synthesize_produces_canonical_phases(self, tiny_kb):
        from repro.core.design import DesignRequest
        from repro.kb.workload import Workload

        observer = EngineObserver()
        engine = ReasoningEngine(tiny_kb, observer=observer)
        request = DesignRequest(
            workloads=[Workload(name="w", objectives=["packet_processing"])],
            include_common_sense=False,
        )
        outcome = engine.synthesize(request)
        assert outcome.feasible
        totals = observer.tracer.phase_totals()
        assert "compile" in totals and "solve" in totals
        assert all(v >= 0 for v in totals.values())
        counters = observer.metrics.as_dict()["counters"]
        assert counters["queries"] == 1
        assert counters["queries.synthesize"] == 1

    def test_disabled_observer_traces_nothing(self, tiny_kb):
        from repro.core.design import DesignRequest
        from repro.kb.workload import Workload

        observer = EngineObserver(enabled=False)
        engine = ReasoningEngine(tiny_kb, observer=observer)
        request = DesignRequest(
            workloads=[Workload(name="w", objectives=["packet_processing"])],
            include_common_sense=False,
        )
        assert engine.check(request).feasible
        assert observer.tracer.records == []


class TestRenderers:
    def _observer_after_solve(self) -> tuple[EngineObserver, dict]:
        observer = EngineObserver(progress_interval=64)
        num_vars, clauses = _php_clauses(6)
        solver = Solver(
            progress_callback=observer.progress, progress_interval=64
        )
        solver.new_vars(num_vars)
        with observer.tracer.span("compile"):
            for clause in clauses:
                solver.add_clause(clause)
        with observer.tracer.span("solve"):
            solver.solve()
        return observer, solver.stats.as_dict()

    def test_phase_breakdown_contains_phases_and_shares(self):
        observer, _ = self._observer_after_solve()
        text = render_phase_breakdown(observer.tracer)
        assert "compile" in text and "solve" in text
        assert "%" in text

    def test_solver_progress_mentions_counters_and_restarts(self):
        observer, stats = self._observer_after_solve()
        text = render_solver_progress(observer.progress, stats)
        assert f"conflicts {stats['conflicts']}" in text
        assert "throughput:" in text
        assert "restarts at conflicts:" in text

    def test_render_profile_combines_both(self):
        observer, stats = self._observer_after_solve()
        text = render_profile(observer, stats)
        assert "Phase breakdown" in text and "Solver" in text

    def test_empty_tracer_renders_placeholder(self):
        assert "no spans" in render_phase_breakdown(Tracer())
        assert "no solver activity" in render_solver_progress(
            ProgressRecorder()
        )
