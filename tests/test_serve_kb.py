"""KB hot-reload verbs: ``PUT /kb`` and ``DELETE /kb/<entity>/<name>``.

The serving obligations for live catalog growth:

1. **Verbs.** ``put_kb`` applies a wire-delta op batch copy-on-write
   (validate, persist, swap) and reports the new version/fingerprint;
   ``delete_kb`` removes one named entity. Invalid deltas are rejected
   atomically — the served KB keeps its exact fingerprint.
2. **Byte parity.** KB updates are handled by the daemon front-end in
   both backends, so a mutation+query script must produce byte-identical
   wire payloads in threaded and ``--workers`` modes.
3. **Warm-path survival.** A delta re-keys pooled sessions (absorbed on
   next use) and sweeps only footprint-intersecting cache entries —
   never a full-pool purge.
4. **Durability.** With a sqlite-backed KB, deltas applied over the wire
   survive a daemon restart from the same fact log.
"""

from __future__ import annotations

import pytest

from repro.core.design import DesignRequest
from repro.kb.hardware import Hardware, NICSpec, ServerSpec
from repro.kb.registry import KnowledgeBase
from repro.kb.rules import Rule
from repro.kb.store import SqliteFactStore
from repro.kb.system import System
from repro.kb.workload import Workload
from repro.kb.dsl import obj
from repro.logic.ast import TRUE, Not
from repro.serve import DaemonConfig, InprocDaemon, ReasoningDaemon
from repro.serve.client import DaemonClient, make_envelope

pytestmark = pytest.mark.timeout(300)


def _kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_system(System(
        name="StackA", category="network_stack",
        solves=["packet_processing"], requires=TRUE,
    ))
    kb.add_system(System(
        name="StackB", category="network_stack",
        solves=["packet_processing"], requires=TRUE,
    ))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="NIC", rate_gbps=25, power_w=10, cost_usd=200),
        max_units=4,
    ))
    kb.add_hardware(Hardware(
        spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=400,
                        cost_usd=5000),
        max_units=4,
    ))
    return kb


def _request(shape: str = "app") -> DesignRequest:
    return DesignRequest(workloads=[
        Workload(name=shape, objectives=["packet_processing"]),
    ])


def _outlaw_op() -> dict:
    return {
        "op": "upsert", "entity": "rule", "name": "outlawed",
        "payload": Rule(
            name="outlawed", formula=Not(obj("packet_processing")),
        ).to_dict(),
    }


def _new_nic_op(model: str = "NewNIC") -> dict:
    return {
        "op": "upsert", "entity": "hardware", "name": model,
        "payload": Hardware(
            spec=NICSpec(model=model, rate_gbps=100, power_w=20,
                         cost_usd=900),
            max_units=4,
        ).to_dict(),
    }


def _put(ops: list[dict], kb: str = "default", request_id="put") -> dict:
    return {"id": request_id, "verb": "put_kb", "kb": kb, "ops": ops}


def _delete(entity: str, name: str, kb: str = "default",
            request_id="del") -> dict:
    return {"id": request_id, "verb": "delete_kb", "kb": kb,
            "entity": entity, "name": name}


class TestKbVerbs:
    def test_put_kb_applies_and_changes_answers(self):
        kb = _kb()
        daemon = ReasoningDaemon(kb, DaemonConfig(port=None, threads=2))
        with InprocDaemon(daemon) as harness:
            before = harness.query(make_envelope("check", _request()))
            assert before["ok"] and before["result"]["feasible"] is True
            version = kb.version
            reply = harness.query(_put([_outlaw_op()]))
            assert reply["ok"], reply
            result = reply["result"]
            assert result["kb"] == "default"
            assert result["version"] > version
            assert "rule/outlawed" in result["changed"]
            # The served KB object was swapped copy-on-write.
            served = daemon.kbs["default"]
            assert served is not kb
            assert result["fingerprint"] == served.fingerprint()
            after = harness.query(make_envelope("check", _request()))
            assert after["ok"] and after["result"]["feasible"] is False

    def test_delete_kb_restores_the_answer(self):
        daemon = ReasoningDaemon(_kb(), DaemonConfig(port=None, threads=2))
        with InprocDaemon(daemon) as harness:
            assert harness.query(_put([_outlaw_op()]))["ok"]
            mid = harness.query(make_envelope("check", _request()))
            assert mid["result"]["feasible"] is False
            reply = harness.query(_delete("rule", "outlawed"))
            assert reply["ok"], reply
            assert "rule/outlawed" in reply["result"]["changed"]
            after = harness.query(make_envelope("check", _request()))
            assert after["ok"] and after["result"]["feasible"] is True

    def test_invalid_delta_is_rejected_atomically(self):
        kb = _kb()
        daemon = ReasoningDaemon(kb, DaemonConfig(port=None, threads=2))
        with InprocDaemon(daemon) as harness:
            fingerprint = kb.fingerprint()
            version = kb.version
            # Valid op followed by garbage: nothing may stick.
            reply = harness.query(_put([
                _new_nic_op(), {"op": "upsert", "entity": "gadget",
                               "name": "x", "payload": {}},
            ]))
            assert reply["ok"] is False
            assert reply["error"]["code"] == "bad_request"
            served = daemon.kbs["default"]
            assert served is kb
            assert served.fingerprint() == fingerprint
            assert served.version == version
            assert "NewNIC" not in served.hardware

    def test_delta_breaking_validation_is_rejected(self):
        kb = _kb()
        daemon = ReasoningDaemon(kb, DaemonConfig(port=None, threads=2))
        with InprocDaemon(daemon) as harness:
            fingerprint = kb.fingerprint()
            # Removing StackA orphans nothing here, but removing *all*
            # packet-processing stacks plus hardware must at minimum
            # keep the KB valid; use an op the registry accepts but
            # validation rejects: a rule over an unknown variable is
            # fine, so instead remove a system that another entity
            # references via ordering after adding one.
            assert harness.query(_put([{
                "op": "add_ordering", "entity": "ordering", "name": "speed",
                "payload": {"dimension": "speed", "better": "StackA",
                            "worse": "StackB", "source": "test"},
            }]))["ok"]
            reply = harness.query(_delete("system", "StackA"))
            # remove_system retracts its edges, so this one succeeds —
            # the KB stays valid throughout.
            assert reply["ok"]
            served = daemon.kbs["default"]
            served.validate_or_raise()
            assert served.fingerprint() != fingerprint

    def test_unknown_kb_and_bad_shapes(self):
        daemon = ReasoningDaemon(_kb(), DaemonConfig(port=None, threads=2))
        with InprocDaemon(daemon) as harness:
            for envelope, code, fragment in [
                (_put([_new_nic_op()], kb="nope"), "not_found", "kb"),
                (_put([]), "bad_request", "non-empty"),
                (_put("not-a-list"), "bad_request", "list"),
                (_delete("gadget", "x"), "bad_request", "entity"),
                ({"id": "d", "verb": "delete_kb", "kb": "default",
                  "entity": "rule"}, "bad_request", "name"),
            ]:
                reply = harness.query(envelope)
                assert reply["ok"] is False, envelope
                assert reply["error"]["code"] == code, reply
                assert fragment in reply["error"]["message"], reply


class TestWarmPathSurvival:
    def test_pool_rekeys_instead_of_purging_on_put(self):
        daemon = ReasoningDaemon(_kb(), DaemonConfig(port=None, threads=2))
        with InprocDaemon(daemon) as harness:
            assert harness.query(make_envelope("check", _request()))["ok"]
            for i in range(3):
                assert harness.query(_put([_new_nic_op(f"NIC{i}")]))["ok"]
                assert harness.query(
                    make_envelope("check", _request())
                )["ok"]
            stats = daemon.pool.stats_dict()
            assert stats["stale_purged"] == 0
            assert stats["evictions"] == 0
            assert stats["misses"] == 1
            assert stats["hits"] == 3

    def test_cache_sweeps_only_intersecting_footprints(self):
        daemon = ReasoningDaemon(
            _kb(), DaemonConfig(port=None, threads=2, cache_size=32)
        )
        pinned = make_envelope("check", DesignRequest(
            workloads=[Workload(name="app",
                                objectives=["packet_processing"])],
            candidate_systems=["StackA"],
            inventory={"NIC": 2, "Box": 2},
        ))
        with InprocDaemon(daemon) as harness:
            assert harness.query(pinned)["ok"]
            # Disjoint hardware: the pinned entry survives and hits.
            assert harness.query(_put([_new_nic_op("Offside")]))["ok"]
            assert harness.query(pinned)["ok"]
            stats = daemon.cache.stats()
            assert stats["hits"] == 1
            assert stats["invalidations"] == 0
            # Overlapping delta: the entry is swept, not served stale.
            nic = daemon.kbs["default"].hardware["NIC"]
            payload = nic.to_dict()
            payload["spec"]["cost_usd"] = 999
            assert harness.query(_put([{
                "op": "upsert", "entity": "hardware", "name": "NIC",
                "payload": payload,
            }]))["ok"]
            assert harness.query(pinned)["ok"]
            stats = daemon.cache.stats()
            assert stats["hits"] == 1
            assert stats["invalidations"] >= 1


class TestThreadedWorkersParity:
    def test_kb_update_scripts_are_byte_identical_across_backends(self):
        """The acceptance script: mutations interleaved with queries.

        KB verbs execute in the front-end in both modes; queries walk
        pooled sessions driven in the same order — every reply byte
        must agree between the threaded and process backends.
        """
        script = [
            make_envelope("check", _request(), request_id="q0"),
            _put([_new_nic_op()], request_id="p0"),
            make_envelope("check", _request(), request_id="q1"),
            _put([_outlaw_op()], request_id="p1"),
            make_envelope("check", _request(), request_id="q2"),
            make_envelope("diagnose", _request(), request_id="q3"),
            _delete("rule", "outlawed", request_id="d0"),
            make_envelope("check", _request(), request_id="q4"),
            make_envelope("enumerate", _request(), request_id="q5",
                          options={"limit": 3}),
            # Error paths serialize identically too.
            _put([], request_id="p-bad"),
            _delete("rule", "never-existed", request_id="d-bad"),
        ]
        with InprocDaemon(
            ReasoningDaemon(_kb(), DaemonConfig(port=None, threads=2))
        ) as threaded:
            expected = [threaded.query_bytes(e) for e in script]
        with InprocDaemon(
            ReasoningDaemon(_kb(), DaemonConfig(port=None, workers=2))
        ) as pooled:
            actual = [pooled.query_bytes(e) for e in script]
        for envelope, want, got in zip(script, expected, actual):
            assert got == want, (
                f"divergence on {envelope.get('id')}:\n"
                f"  threaded: {want!r}\n  process:  {got!r}"
            )

    def test_workers_see_deltas_not_full_kb_reships(self):
        daemon = ReasoningDaemon(_kb(), DaemonConfig(port=None, workers=2))
        with InprocDaemon(daemon) as harness:
            assert harness.query(make_envelope("check", _request()))["ok"]
            assert harness.query(_put([_outlaw_op()]))["ok"]
            reply = harness.query(make_envelope("check", _request()))
            assert reply["ok"] and reply["result"]["feasible"] is False
            assert daemon.metrics.counter("workers.kb_delta_shipped") >= 1
            assert daemon.metrics.counter("workers.kb_shipped") == 0


class TestHttpTransportAndClient:
    @pytest.fixture
    def served(self):
        daemon = ReasoningDaemon(
            _kb(), DaemonConfig(port=0, pool_size=4, threads=2)
        )
        harness = InprocDaemon(daemon, start_transports=True).start()
        try:
            yield daemon, f"http://127.0.0.1:{daemon.port}"
        finally:
            harness.stop()

    def test_put_and_delete_via_http_client(self, served):
        daemon, url = served
        with DaemonClient(url=url, timeout=30) as client:
            assert client.query(
                make_envelope("check", _request())
            )["result"]["feasible"] is True
            reply = client.put_kb([_outlaw_op()])
            assert reply["ok"], reply
            assert reply["result"]["version"] == (
                daemon.kbs["default"].version
            )
            assert client.query(
                make_envelope("check", _request())
            )["result"]["feasible"] is False
            reply = client.delete_entity("rule", "outlawed")
            assert reply["ok"], reply
            assert client.query(
                make_envelope("check", _request())
            )["result"]["feasible"] is True
            stats = client.stats()
            assert stats["metrics"]["counters"]["kb.updates"] == 2
            assert stats["pool"]["stale_purged"] == 0

    def test_http_delete_quotes_names(self, served):
        daemon, url = served
        # Entity names with URL-hostile characters survive the route.
        weird = "rule with spaces/and slash"
        daemon.kbs["default"].add_rule(Rule(name=weird, formula=TRUE))
        with DaemonClient(url=url, timeout=30) as client:
            reply = client.delete_entity("rule", weird)
            assert reply["ok"], reply
        assert weird not in daemon.kbs["default"].rules


class TestStorePersistence:
    def test_put_kb_survives_daemon_restart(self, tmp_path):
        path = str(tmp_path / "kb.sqlite")
        kb = _kb()
        kb.attach_store(SqliteFactStore(path), snapshot=True)
        daemon = ReasoningDaemon(kb, DaemonConfig(port=None, threads=2))
        with InprocDaemon(daemon) as harness:
            assert harness.query(_put([_new_nic_op(), _outlaw_op()]))["ok"]
            fingerprint = daemon.kbs["default"].fingerprint()
            daemon.kbs["default"].detach_store().close()

        reborn = KnowledgeBase.from_store(SqliteFactStore(path))
        assert reborn.fingerprint() == fingerprint
        assert "NewNIC" in reborn.hardware
        daemon2 = ReasoningDaemon(reborn, DaemonConfig(port=None, threads=2))
        with InprocDaemon(daemon2) as harness:
            reply = harness.query(make_envelope("check", _request()))
            assert reply["ok"] and reply["result"]["feasible"] is False
