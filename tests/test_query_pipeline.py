"""The unified query pipeline: Query IR, executor stages, and parity.

Covers the invariants the pipeline refactor introduced:

- the Query IR validates verbs and keys caches canonically (verb and
  options can never collide);
- ``diagnose``/``equivalence``/``enumerate``/``compare`` gain result
  caching with per-verb hit/miss metrics;
- deletion-based MUS minimization is one-pass (solver-call count pinned);
- session-vs-fresh differential parity: minimal conflict sets and
  equivalence-class partitions are identical under ``incremental`` and
  ``preprocess`` on/off, over a fuzzed request population.
"""

from __future__ import annotations

import random

import pytest

from repro.core.design import DesignRequest
from repro.core.diagnose import minimize_core
from repro.core.engine import ReasoningEngine
from repro.core.executor import QueryExecutor
from repro.core.query import CACHEABLE_VERBS, Query, VERBS
from repro.errors import QueryError, UnknownEntityError
from repro.kb.workload import Workload
from repro.obs.observer import EngineObserver
from repro.par.cache import QueryCache


def _request(**kwargs) -> DesignRequest:
    defaults = dict(
        workloads=[Workload(name="app", objectives=["packet_processing"])],
    )
    defaults.update(kwargs)
    return DesignRequest(**defaults)


# ---------------------------------------------------------------------------
# Query IR
# ---------------------------------------------------------------------------


class TestQueryIR:
    def test_rejects_unknown_verbs(self):
        with pytest.raises(QueryError):
            Query("summon", _request())

    def test_every_verb_is_known(self):
        for verb in VERBS:
            assert Query(verb, _request()).verb == verb

    def test_explain_is_not_cacheable(self):
        assert not Query("explain", _request()).cacheable
        for verb in CACHEABLE_VERBS:
            assert Query(verb, _request()).cacheable

    def test_cache_key_covers_verb_and_options(self, tiny_kb):
        request = _request()
        keys = {
            Query(verb, request).cache_key(tiny_kb)
            for verb in CACHEABLE_VERBS
        }
        assert len(keys) == len(CACHEABLE_VERBS)
        assert Query(
            "equivalence", request, class_limit=4
        ).cache_key(tiny_kb) != Query(
            "equivalence", request, class_limit=8
        ).cache_key(tiny_kb)
        assert Query("enumerate", request, limit=2).cache_key(
            tiny_kb
        ) != Query("enumerate", request, limit=3).cache_key(tiny_kb)

    def test_cache_key_covers_executor_config(self, tiny_kb):
        query = Query("check", _request())
        assert query.cache_key(tiny_kb, "inc=1;pp=1") != query.cache_key(
            tiny_kb, "inc=0;pp=1"
        )


# ---------------------------------------------------------------------------
# Executor caching (diagnose / equivalence / compare)
# ---------------------------------------------------------------------------


class TestExecutorCaching:
    def test_diagnose_conflicts_are_cached(self, tiny_kb):
        observer = EngineObserver()
        engine = ReasoningEngine(
            tiny_kb, observer=observer, cache=QueryCache()
        )
        bad = _request(
            required_systems=["StackA"], forbidden_systems=["StackA"]
        )
        first = engine.diagnose(bad)
        second = engine.diagnose(bad)
        assert first is second
        assert first.constraints == ["forbidden:StackA", "required:StackA"]
        assert observer.metrics.counter("cache.diagnose.misses") == 1
        assert observer.metrics.counter("cache.diagnose.hits") == 1
        assert observer.metrics.counter("queries.diagnose") == 1

    def test_feasible_diagnose_caches_none(self, tiny_kb):
        observer = EngineObserver()
        engine = ReasoningEngine(
            tiny_kb, observer=observer, cache=QueryCache()
        )
        ok = _request()
        assert engine.diagnose(ok) is None
        assert engine.diagnose(ok) is None
        # The None result must come from the cache, not be recomputed:
        # the miss sentinel is distinct from a cached None.
        assert observer.metrics.counter("cache.diagnose.hits") == 1
        assert observer.metrics.counter("queries.diagnose") == 1

    def test_diagnose_and_check_never_collide(self, tiny_kb):
        cache = QueryCache()
        engine = ReasoningEngine(tiny_kb, cache=cache)
        bad = _request(
            required_systems=["Monitor"], forbidden_systems=["Monitor"]
        )
        outcome = engine.check(bad)
        conflict = engine.diagnose(bad)
        assert cache.stats()["size"] == 2
        assert not outcome.feasible
        assert conflict.constraints == outcome.conflict.constraints

    def test_compare_shares_cache_with_synthesize(self, tiny_kb):
        observer = EngineObserver()
        engine = ReasoningEngine(
            tiny_kb, observer=observer, cache=QueryCache()
        )
        baseline = _request(optimize=["capex_usd"])
        alternative = _request(
            optimize=["capex_usd"], required_systems=["Monitor"]
        )
        first = engine.compare(baseline, alternative)
        second = engine.compare(baseline, alternative)
        assert second.baseline is first.baseline
        assert second.alternative is first.alternative
        assert observer.metrics.counter("cache.synthesize.hits") == 2
        # A plain synthesize of the baseline is the same cache entry.
        assert engine.synthesize(baseline) is first.baseline
        assert observer.metrics.counter("queries.synthesize") == 2

    def test_equivalence_cached_per_options(self, tiny_kb):
        observer = EngineObserver()
        engine = ReasoningEngine(
            tiny_kb, observer=observer, cache=QueryCache()
        )
        request = _request()
        wide = engine.equivalence_classes(request, class_limit=16)
        again = engine.equivalence_classes(request, class_limit=16)
        narrow = engine.equivalence_classes(request, class_limit=1)
        assert again is wide
        assert len(narrow) == 1
        assert observer.metrics.counter("cache.equivalence.misses") == 2
        assert observer.metrics.counter("cache.equivalence.hits") == 1


# ---------------------------------------------------------------------------
# Executor verbs
# ---------------------------------------------------------------------------


class TestExecutorVerbs:
    def test_enumerate_deployments(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        deployments = engine.enumerate_deployments(_request())
        assert set(deployments) == {
            ("StackA",),
            ("StackB",),
            ("Monitor", "StackA"),
            ("Monitor", "StackB"),
        }
        # Smallest deployments first, then lexicographic.
        assert deployments[0] == ("StackA",)
        assert len(deployments[0]) <= len(deployments[-1])
        # Enumeration must not poison the shared session solver.
        assert engine.check(_request()).feasible

    def test_enumerate_respects_limit_and_infeasible(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        assert len(engine.enumerate_deployments(_request(), limit=2)) == 2
        bad = _request(
            required_systems=["StackA"], forbidden_systems=["StackA"]
        )
        assert engine.enumerate_deployments(bad) == []

    def test_explain_requires_outcome(self, tiny_kb):
        executor = QueryExecutor(tiny_kb)
        with pytest.raises(QueryError):
            executor.execute(Query("explain", _request()))

    def test_explain_through_executor(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        request = _request()
        feasible = engine.check(request)
        assert "StackA" in engine.explain(
            request, feasible
        ) or "StackB" in engine.explain(request, feasible)
        bad = _request(
            required_systems=["StackA"], forbidden_systems=["StackA"]
        )
        text = engine.explain(bad, engine.check(bad))
        assert "required:StackA" in text

    def test_session_rejects_unknown_entities(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)  # incremental by default
        with pytest.raises(UnknownEntityError):
            engine.diagnose(_request(forbidden_systems=["Ghost"]))
        with pytest.raises(UnknownEntityError):
            engine.check(_request(fixed_hardware={"GhostNIC": 1}))

    def test_batch_mixed_verbs_through_one_executor(self, tiny_kb):
        executor = QueryExecutor(tiny_kb, cache=QueryCache())
        bad = _request(
            required_systems=["StackB"], forbidden_systems=["StackB"]
        )
        results = executor.execute_many(
            [
                Query("check", _request()),
                Query("diagnose", bad),
                Query("diagnose", _request()),
            ],
            jobs=1,
        )
        assert results[0].feasible
        assert results[1].constraints == [
            "forbidden:StackB", "required:StackB"
        ]
        assert results[2] is None


# ---------------------------------------------------------------------------
# MUS minimization is one-pass
# ---------------------------------------------------------------------------


class _ScriptedSolver:
    """SAT iff the designated MUS is not fully assumed; cores echo the
    assumptions (the least-helpful legal core a CDCL solver may return)."""

    def __init__(self, mus_lits: set[int]):
        self.mus = set(mus_lits)
        self.calls = 0
        self._last: list[int] = []

    def solve(self, assumptions):
        self.calls += 1
        self._last = list(assumptions)
        return not self.mus <= set(assumptions)

    def unsat_core(self):
        return list(self._last)


class _ScriptedCompiled:
    def __init__(self, names: list[str], mus_names: list[str]):
        self.selectors = {name: i + 1 for i, name in enumerate(names)}
        self.solver = _ScriptedSolver(
            {self.selectors[name] for name in mus_names}
        )

    def core_names(self):
        by_lit = {lit: name for name, lit in self.selectors.items()}
        return [
            by_lit[lit]
            for lit in self.solver.unsat_core()
            if lit in by_lit
        ]


class TestMinimizeCoreIsOnePass:
    def test_finds_the_unique_mus(self):
        names = [f"g{i:02d}" for i in range(12)]
        mus = ["g02", "g07", "g11"]
        compiled = _ScriptedCompiled(names, mus)
        assert sorted(minimize_core(compiled, list(names))) == sorted(mus)

    def test_solver_call_count_is_linear(self):
        # Before the fix, every successful deletion reset the scan to
        # index 0, re-confirming the whole prefix: quadratic solve calls
        # even with a cooperative solver. One pass needs exactly one
        # call per initial core element.
        names = [f"g{i:02d}" for i in range(12)]
        compiled = _ScriptedCompiled(names, ["g02", "g07", "g11"])
        minimize_core(compiled, list(names))
        assert compiled.solver.calls == len(names)

    def test_call_count_on_a_real_seeded_conflict(self, tiny_kb):
        # required Monitor needs NIC timestamps, but the only NIC with
        # them is frozen at zero units; the engine-facing guarantee:
        # minimization stays within one solve per initial-core element
        # on a live CDCL solver too.
        engine = ReasoningEngine(tiny_kb, incremental=False)
        request = _request(
            required_systems=["Monitor"],
            fixed_hardware={"FancyNIC": 0},
        )
        compiled = engine.compile(request)
        assert not compiled.solve()
        initial = len(compiled.core_names())
        calls = 0
        original_solve = compiled.solver.solve

        def counting_solve(assumptions=()):
            nonlocal calls
            calls += 1
            return original_solve(assumptions)

        compiled.solver.solve = counting_solve
        conflict_names = minimize_core(
            compiled, sorted(compiled.core_names())
        )
        assert calls <= initial
        assert "required:Monitor" in conflict_names
        assert "fixed_hardware:FancyNIC" in conflict_names


# ---------------------------------------------------------------------------
# Session-vs-fresh differential parity (fuzzed)
# ---------------------------------------------------------------------------


_CONFIGS = (
    (True, True),
    (True, False),
    (False, True),
    (False, False),
)


def _fuzzed_requests(seed: int, count: int) -> list[DesignRequest]:
    """Randomized requests over tiny_kb, mixing feasible and infeasible.

    The generator keeps the request *shape* (workloads, candidates,
    inventory) constant so incremental engines exercise guard reuse
    rather than rebasing every query.
    """
    rng = random.Random(seed)
    systems = ["StackA", "StackB", "Monitor"]
    out = []
    for _ in range(count):
        required = [s for s in systems if rng.random() < 0.35]
        forbidden = [s for s in systems if rng.random() < 0.3]
        budgets = {}
        if rng.random() < 0.5:
            budgets["capex_usd"] = rng.choice([150, 600, 1500, 40_000])
        if rng.random() < 0.3:
            budgets["power_w"] = rng.choice([5, 40, 5_000])
        fixed = {}
        if rng.random() < 0.3:
            fixed["FancyNIC"] = rng.choice([0, 1])
        if rng.random() < 0.2:
            fixed["Box"] = rng.choice([0, 2])
        objectives = rng.choice(
            [["packet_processing"], ["packet_processing",
                                     "detect_queue_length"]]
        )
        out.append(_request(
            workloads=[Workload(name="app", objectives=objectives)],
            required_systems=required,
            forbidden_systems=forbidden,
            budgets=budgets,
            fixed_hardware=fixed,
        ))
    return out


class TestSessionFreshParity:
    def test_diagnose_parity_over_fuzzed_requests(self, tiny_kb):
        requests = _fuzzed_requests(seed=1338, count=60)
        engines = {
            config: ReasoningEngine(
                tiny_kb, incremental=config[0], preprocess=config[1]
            )
            for config in _CONFIGS
        }
        infeasible = 0
        for i, request in enumerate(requests):
            conflicts = {
                config: engines[config].diagnose(request)
                for config in _CONFIGS
            }
            reference = conflicts[(True, True)]
            for config, conflict in conflicts.items():
                if reference is None:
                    assert conflict is None, (i, config)
                else:
                    assert conflict is not None, (i, config)
                    assert conflict.constraints == reference.constraints, (
                        i, config
                    )
            if reference is not None:
                infeasible += 1
        # The fuzz must exercise both outcomes to mean anything.
        assert 5 <= infeasible <= len(requests) - 5

    def test_equivalence_parity_over_fuzzed_requests(self, tiny_kb):
        requests = _fuzzed_requests(seed=90125, count=48)
        engines = {
            config: ReasoningEngine(
                tiny_kb, incremental=config[0], preprocess=config[1]
            )
            for config in _CONFIGS
        }
        nonempty = 0
        for i, request in enumerate(requests):
            partitions = {
                config: [
                    (tuple(cls.systems), cls.completions)
                    for cls in engines[config].equivalence_classes(
                        request, class_limit=None, completions_limit=8
                    )
                ]
                for config in _CONFIGS
            }
            reference = partitions[(True, True)]
            for config, partition in partitions.items():
                assert partition == reference, (i, config)
            if reference:
                nonempty += 1
        assert 5 <= nonempty <= len(requests) - 5
