"""Tests for the §6/§3.1 extension features: suggestions, measurement
value, and knowledge-base evolution."""

from __future__ import annotations

import pytest

from repro.core.design import DesignRequest
from repro.core.engine import ReasoningEngine
from repro.core.measurements import measurement_value
from repro.core.suggest import (
    suggest_disambiguations,
    suggest_relaxations,
)
from repro.errors import UnknownEntityError, ValidationError
from repro.kb.dsl import prop
from repro.kb.evolution import KnowledgeBaseDelta, diff_systems
from repro.kb.hardware import Hardware, NICSpec
from repro.kb.ordering import Ordering
from repro.kb.registry import KnowledgeBase
from repro.kb.rules import Rule
from repro.kb.system import System
from repro.kb.workload import Workload
from repro.logic.ast import Not


def _request(**kwargs) -> DesignRequest:
    defaults = dict(
        workloads=[Workload(name="app", objectives=["packet_processing"])],
    )
    defaults.update(kwargs)
    return DesignRequest(**defaults)


class TestRelaxations:
    def test_each_relaxation_unlocks_a_design(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        request = _request(
            required_systems=["StackA"],
            forbidden_systems=["StackA"],
        )
        conflict = engine.diagnose(request)
        relaxations = suggest_relaxations(tiny_kb, request, conflict)
        assert relaxations
        dropped = {r.dropped_constraint for r in relaxations}
        assert dropped == {"required:StackA", "forbidden:StackA"}
        for relaxation in relaxations:
            assert relaxation.solution.systems  # a concrete way out

    def test_resource_conflict_relaxation(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        request = _request(
            workloads=[Workload(
                name="app",
                objectives=["packet_processing"],
                peak_cores=8 * 32 + 1,
            )],
        )
        conflict = engine.diagnose(request)
        relaxations = suggest_relaxations(tiny_kb, request, conflict)
        assert any(
            r.dropped_constraint == "resource:cpu_cores" for r in relaxations
        )


class TestDisambiguation:
    def test_plan_narrows_to_one(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        classes = engine.equivalence_classes(
            _request(), class_limit=16, completions_limit=1,
        )
        assert len(classes) >= 2
        plan = suggest_disambiguations(classes)
        assert len(plan) >= 1
        # Greedy split on >= 2 classes over distinct singleton sets needs
        # at most len(classes) - 1 questions.
        assert len(plan) <= len(classes) - 1

    def test_single_class_needs_no_questions(self):
        from repro.core.equivalence import DeploymentClass

        plan = suggest_disambiguations(
            [DeploymentClass(systems=["A"], completions=1)]
        )
        assert len(plan) == 0

    def test_identical_classes_stop_gracefully(self):
        from repro.core.equivalence import DeploymentClass

        classes = [
            DeploymentClass(systems=["A"], completions=1),
            DeploymentClass(systems=["A"], completions=2),
        ]
        plan = suggest_disambiguations(classes)
        assert len(plan) == 0


class TestMeasurementValue:
    def _kb(self) -> KnowledgeBase:
        kb = KnowledgeBase()
        kb.add_system(System(name="Fast", category="network_stack",
                             solves=["packet_processing"]))
        kb.add_system(System(name="Slow", category="network_stack",
                             solves=["packet_processing"]))
        kb.add_system(System(name="Other", category="monitoring",
                             solves=["telemetry"]))
        kb.add_hardware(Hardware(spec=NICSpec(
            model="N", rate_gbps=25, power_w=5, cost_usd=100,
        )))
        return kb

    def test_measurement_matters_when_design_flips(self):
        kb = self._kb()
        engine = ReasoningEngine(kb, validate=False)
        request = _request(optimize=["speed"], include_common_sense=False)
        # 'speed' is not yet a KB dimension; the hypothetical edges
        # create it, and the chosen stack follows the winner.
        verdict = measurement_value(
            engine, kb, request, "Fast", "Slow", "speed"
        )
        assert verdict.worth_measuring
        assert verdict.design_if_a_wins != verdict.design_if_b_wins
        assert "matters" in verdict.explanation()

    def test_measurement_pointless_when_outcome_fixed(self):
        kb = self._kb()
        engine = ReasoningEngine(kb, validate=False)
        # Architect already pinned the stack: the benchmark cannot
        # change anything.
        request = _request(
            required_systems=["Fast"],
            forbidden_systems=["Slow"],
            optimize=["speed"],
            include_common_sense=False,
        )
        verdict = measurement_value(
            engine, kb, request, "Fast", "Slow", "speed"
        )
        assert not verdict.worth_measuring
        assert "unnecessary" in verdict.explanation()

    def test_kb_restored_after_query(self):
        kb = self._kb()
        engine = ReasoningEngine(kb, validate=False)
        before = len(kb.orderings)
        measurement_value(engine, kb, _request(include_common_sense=False),
                          "Fast", "Slow", "speed")
        assert len(kb.orderings) == before


class TestEvolution:
    def _kb(self) -> KnowledgeBase:
        kb = KnowledgeBase()
        kb.add_system(System(name="V1", category="network_stack",
                             solves=["packet_processing"]))
        kb.add_system(System(name="Peer", category="monitoring",
                             solves=["telemetry"]))
        kb.add_ordering(Ordering("V1", "Peer", "latency", source="x"))
        return kb

    def test_replace_updates_provides(self):
        kb = self._kb()
        v2 = System(name="V1", category="network_stack",
                    solves=["packet_processing"],
                    provides=["net::OVERLAY_ENCAP"])
        delta = KnowledgeBaseDelta(author="expert", replace_systems=[v2])
        evolved, report = delta.apply(kb)
        assert report.replaced_systems == ["V1"]
        assert evolved.systems["V1"].provides == ["net::OVERLAY_ENCAP"]
        assert kb.systems["V1"].provides == []  # original untouched

    def test_remove_retracts_orderings(self):
        kb = self._kb()
        delta = KnowledgeBaseDelta(remove_systems=["V1"])
        evolved, report = delta.apply(kb)
        assert "V1" not in evolved.systems
        assert report.removed_orderings == 1
        assert evolved.orderings == []

    def test_strict_rejects_dangling_reference(self):
        kb = self._kb()
        bad = System(name="New", category="firewall", conflicts=["Ghost"])
        delta = KnowledgeBaseDelta(add_systems=[bad])
        with pytest.raises(ValidationError):
            delta.apply(kb)
        evolved, report = delta.apply(kb, strict=False)
        assert any(i.severity == "error" for i in report.issues)

    def test_unknown_operations_rejected(self):
        kb = self._kb()
        with pytest.raises(UnknownEntityError):
            KnowledgeBaseDelta(remove_systems=["Nope"]).apply(kb)
        with pytest.raises(UnknownEntityError):
            KnowledgeBaseDelta(
                replace_systems=[System(name="Nope", category="firewall")]
            ).apply(kb)
        with pytest.raises(UnknownEntityError):
            KnowledgeBaseDelta(
                remove_orderings=[("A", "B", "zeta")]
            ).apply(kb)

    def test_rule_and_ordering_addition(self):
        kb = self._kb()
        delta = KnowledgeBaseDelta(
            add_rules=[Rule(name="r", formula=Not(prop("net", "FLOODING")))],
            add_orderings=[Ordering("Peer", "V1", "deployment_ease",
                                    source="y")],
        )
        evolved, report = delta.apply(kb)
        assert "r" in evolved.rules
        assert report.added_orderings == 1
        assert report.summary()

    def test_diff_systems(self):
        kb = self._kb()
        v2 = System(name="V1", category="network_stack",
                    solves=["packet_processing"],
                    provides=["net::OVERLAY_ENCAP"])
        delta = KnowledgeBaseDelta(
            replace_systems=[v2],
            add_systems=[System(name="New", category="firewall")],
        )
        evolved, _ = delta.apply(kb)
        changes = diff_systems(kb, evolved)
        assert changes == {"V1": "modified", "New": "added"}

    def test_queries_survive_evolution(self, tiny_kb):
        """The §6 point: evolved encodings keep old queries answerable."""
        engine_before = ReasoningEngine(tiny_kb)
        request = _request()
        assert engine_before.synthesize(request).feasible
        v2 = System(
            name="StackA", category="network_stack",
            solves=["packet_processing"],
            provides=["net::OVERLAY_ENCAP"],  # new version adds overlay
        )
        delta = KnowledgeBaseDelta(replace_systems=[v2])
        evolved, _ = delta.apply(tiny_kb)
        outcome = ReasoningEngine(evolved).synthesize(request)
        assert outcome.feasible
        if outcome.solution.uses("StackA"):
            assert "net::OVERLAY_ENCAP" in outcome.solution.properties
