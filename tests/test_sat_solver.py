"""Unit tests for the CDCL SAT solver."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidLiteralError, SolverStateError
from repro.sat import Solver
from repro.sat.solver import luby
from tests.conftest import brute_force_sat, random_clauses


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve() is True

    def test_single_unit_clause(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([a])
        assert s.solve()
        assert s.value(a) is True
        assert s.value(-a) is False

    def test_contradictory_units(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert not s.add_clause([-a])
        assert s.solve() is False

    def test_model_satisfies_clauses(self):
        s = Solver()
        a, b, c = s.new_vars(3)
        clauses = [[a, b], [-a, c], [-b, -c], [a, -c]]
        for clause in clauses:
            s.add_clause(clause)
        assert s.solve()
        model = s.model()
        for clause in clauses:
            assert any((lit > 0) == model[abs(lit)] for lit in clause)

    def test_implication_chain_propagates(self):
        s = Solver()
        variables = s.new_vars(50)
        for prev, cur in zip(variables, variables[1:]):
            s.add_clause([-prev, cur])
        s.add_clause([variables[0]])
        assert s.solve()
        assert all(s.value(v) for v in variables)

    def test_duplicate_literals_collapse(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([a, a, a])
        assert s.solve()
        assert s.value(a) is True

    def test_tautology_is_dropped(self):
        s = Solver()
        a, b = s.new_vars(2)
        assert s.add_clause([a, -a])
        s.add_clause([-b])
        assert s.solve()
        assert s.value(b) is False

    def test_incremental_solving(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        assert s.solve()
        s.add_clause([-a])
        assert s.solve()
        assert s.value(b) is True
        s.add_clause([-b])
        assert s.solve() is False


class TestValidation:
    def test_zero_literal_rejected(self):
        s = Solver()
        s.new_var()
        with pytest.raises(InvalidLiteralError):
            s.add_clause([0])

    def test_unknown_variable_rejected(self):
        s = Solver()
        with pytest.raises(InvalidLiteralError):
            s.add_clause([1])

    def test_bool_literal_rejected(self):
        s = Solver()
        s.new_var()
        with pytest.raises(InvalidLiteralError):
            s.add_clause([True])

    def test_model_before_solve_raises(self):
        s = Solver()
        s.new_var()
        with pytest.raises(SolverStateError):
            s.model()

    def test_core_without_failed_assumptions_raises(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        s.solve()
        with pytest.raises(SolverStateError):
            s.unsat_core()


class TestPigeonhole:
    @pytest.mark.parametrize("pigeons,holes", [(2, 1), (4, 3), (6, 5)])
    def test_php_unsat(self, pigeons, holes):
        s = Solver()
        v = {
            (p, h): s.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            s.add_clause([v[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-v[p1, h], -v[p2, h]])
        assert s.solve() is False

    def test_php_equal_is_sat(self):
        s = Solver()
        n = 4
        v = {(p, h): s.new_var() for p in range(n) for h in range(n)}
        for p in range(n):
            s.add_clause([v[p, h] for h in range(n)])
        for h in range(n):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    s.add_clause([-v[p1, h], -v[p2, h]])
        assert s.solve() is True


class TestAssumptions:
    def test_sat_under_assumptions(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        assert s.solve([-a])
        assert s.value(b) is True

    def test_unsat_core_is_subset_of_assumptions(self):
        s = Solver()
        x, y, z, w = s.new_vars(4)
        s.add_clause([-x, y])
        s.add_clause([-y, -z])
        assert s.solve([x, z, w]) is False
        core = s.unsat_core()
        assert set(core) <= {x, z, w}
        assert x in core and z in core
        assert w not in core

    def test_assumptions_do_not_persist(self):
        s = Solver()
        a = s.new_var()
        assert s.solve([-a])
        assert s.solve([a])

    def test_duplicate_assumptions(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([-a, b])
        assert s.solve([a, a, a])
        assert s.value(b) is True

    def test_conflicting_assumptions(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])  # keep the formula satisfiable
        assert s.solve([a, -a]) is False
        assert set(s.unsat_core()) == {a, -a}

    def test_formula_level_unsat_gives_empty_core(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a])
        s.add_clause([-a])
        assert s.solve([b]) is False
        assert s.unsat_core() == []


class TestBudget:
    def test_budget_exhaustion_returns_none(self):
        s = Solver(restart_base=1)
        # A hard-ish pigeonhole so one conflict is not enough.
        pigeons, holes = 7, 6
        v = {
            (p, h): s.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            s.add_clause([v[p, h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([-v[p1, h], -v[p2, h]])
        result = s.solve_limited(conflict_budget=3)
        assert result.satisfiable is None

    def test_solve_or_raise(self):
        from repro.errors import BudgetExceededError

        s = Solver()
        a, b, c = s.new_vars(3)
        s.add_clause([a, b, c])
        assert s.solve_or_raise() is True
        s2 = Solver(restart_base=1)
        v = {(p, h): s2.new_var() for p in range(7) for h in range(6)}
        for p in range(7):
            s2.add_clause([v[p, h] for h in range(6)])
        for h in range(6):
            for p1 in range(7):
                for p2 in range(p1 + 1, 7):
                    s2.add_clause([-v[p1, h], -v[p2, h]])
        with pytest.raises(BudgetExceededError):
            s2.solve_or_raise(conflict_budget=2)


class TestAblations:
    """Feature switches must not change verdicts, only speed."""

    @pytest.mark.parametrize(
        "flags",
        [
            {"enable_vsids": False},
            {"enable_learning": False},
            {"enable_restarts": False},
            {"enable_phase_saving": False},
        ],
    )
    def test_ablation_agrees_with_brute_force(self, flags):
        rng = random.Random(99)
        for _ in range(60):
            n = rng.randint(2, 7)
            clauses = random_clauses(rng, n, rng.randint(1, 25))
            expected = brute_force_sat(n, clauses)
            s = Solver(**flags)
            s.new_vars(n)
            for clause in clauses:
                s.add_clause(clause)
            assert s.solve() == expected, (flags, clauses)


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            luby(0)


class TestRandomized:
    def test_agrees_with_brute_force(self):
        rng = random.Random(1234)
        for _ in range(200):
            n = rng.randint(2, 8)
            clauses = random_clauses(rng, n, rng.randint(1, 30))
            expected = brute_force_sat(n, clauses)
            s = Solver()
            s.new_vars(n)
            for clause in clauses:
                s.add_clause(clause)
            got = s.solve()
            assert got == expected, clauses
            if got:
                model = s.model()
                assert all(
                    any((lit > 0) == model[abs(lit)] for lit in clause)
                    for clause in clauses
                )

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_hypothesis_random_formulas(self, data):
        n = data.draw(st.integers(min_value=1, max_value=6))
        clauses = data.draw(
            st.lists(
                st.lists(
                    st.integers(min_value=1, max_value=n).flatmap(
                        lambda v: st.sampled_from([v, -v])
                    ),
                    min_size=1,
                    max_size=4,
                ),
                min_size=0,
                max_size=20,
            )
        )
        s = Solver()
        s.new_vars(n)
        for clause in clauses:
            s.add_clause(clause)
        assert s.solve() == brute_force_sat(n, clauses)

    def test_stats_accumulate(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        s.solve()
        stats = s.stats.as_dict()
        assert stats["decisions"] >= 1


def _php_solver(pigeons: int, holes: int, **kwargs) -> Solver:
    """A solver loaded with PHP(pigeons, holes)."""
    s = Solver(**kwargs)
    v = {
        (p, h): s.new_var() for p in range(pigeons) for h in range(holes)
    }
    for p in range(pigeons):
        s.add_clause([v[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([-v[p1, h], -v[p2, h]])
    return s


class TestModelInvalidation:
    def test_add_clause_invalidates_model(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        assert s.solve()
        s.model()  # fine right after solve
        s.add_clause([-a, b])
        with pytest.raises(SolverStateError):
            s.model()
        with pytest.raises(SolverStateError):
            s.value(a)
        # Re-solving restores access, under the new clause set.
        assert s.solve()
        model = s.model()
        assert model[a] or model[b]
        assert not model[a] or model[b]

    def test_add_clause_invalidates_core(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([-a, b])
        assert s.solve([a, -b]) is False
        assert set(s.unsat_core()) <= {a, -b}
        s.add_clause([a, b])
        with pytest.raises(SolverStateError):
            s.unsat_core()


class TestHeapBound:
    def test_order_heap_stays_bounded_under_heavy_bumping(self):
        # PHP(7,6) generates hundreds of conflicts, each bumping every
        # variable on the conflict side; without lazy-deletion compaction
        # the heap grows with the number of bumps instead of the number
        # of variables.
        s = _php_solver(7, 6)
        assert s.solve() is False
        assert s.stats.conflicts > 100  # the workload actually bumped a lot
        assert len(s._order_heap) <= 3 * s.num_vars + 64

    def test_decide_var_skips_stale_entries(self):
        s = Solver()
        variables = s.new_vars(8)
        for i in range(0, 8, 2):
            s.add_clause([variables[i], variables[i + 1]])
        assert s.solve()
        # Solved instance: heap may hold stale entries, but a fresh solve
        # must still pick every variable exactly once.
        assert s.solve()
        assert len(s.model()) == 8


class TestProofForStrengthenedClauses:
    def test_root_strengthened_clause_is_logged_and_verifies(self):
        from repro.sat.drat import check_rup_proof

        s = Solver(proof_logging=True)
        a, b, c = s.new_vars(3)
        clauses = [[-a], [a, b, c], [-b], [-c]]
        for clause in clauses:
            s.add_clause(clause)
        # [a, b, c] was strengthened to [b, c] by the root unit -a, then
        # to the unit [b]... the formula is unsat; the proof must include
        # the strengthened additions so the refutation checks out.
        assert s.solve() is False
        assert s.proof.ends_with_empty_clause
        assert check_rup_proof(clauses, s.proof)

    def test_strengthened_to_unit_is_logged(self):
        from repro.sat.drat import check_rup_proof

        s = Solver(proof_logging=True)
        a, b = s.new_vars(2)
        clauses = [[-a], [a, b], [-b]]
        for clause in clauses:
            s.add_clause(clause)
        # [a, b] strengthens to the unit [b], which clashes with [-b]:
        # the empty clause lands at add_clause time, before any solve.
        assert s.solve() is False
        added = [lits for op, lits in s.proof.steps if op == "a"]
        assert [b] in added, "the strengthened unit must appear in the proof"
        assert check_rup_proof(clauses, s.proof)

    def test_strengthened_binary_is_logged(self):
        from repro.sat.drat import check_rup_proof

        s = Solver(proof_logging=True)
        a, b, c, d = s.new_vars(4)
        clauses = [[-a], [a, b, c], [b, d], [-b], [-c], [-d]]
        for clause in clauses:
            s.add_clause(clause)
        assert s.solve() is False
        added = [sorted(lits) for op, lits in s.proof.steps if op == "a"]
        assert sorted([b, c]) in added
        assert check_rup_proof(clauses, s.proof)
