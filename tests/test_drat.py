"""Tests for proof logging and independent RUP verification."""

from __future__ import annotations

import random

import pytest

from repro.sat import Solver
from repro.sat.drat import Proof, check_rup_proof
from tests.conftest import brute_force_sat, random_clauses


def _php_clauses(pigeons: int, holes: int) -> tuple[int, list[list[int]]]:
    clauses = []
    var = {}
    counter = 0
    for p in range(pigeons):
        for h in range(holes):
            counter += 1
            var[p, h] = counter
    for p in range(pigeons):
        clauses.append([var[p, h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var[p1, h], -var[p2, h]])
    return counter, clauses


def _solve_logged(num_vars: int, clauses: list[list[int]]) -> tuple[bool, Proof]:
    solver = Solver(proof_logging=True)
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve(), solver.proof


class TestProofObject:
    def test_drat_rendering(self):
        proof = Proof()
        proof.add([1, -2])
        proof.delete([1, -2])
        proof.add([])
        text = proof.to_drat()
        assert text.splitlines() == ["1 -2 0", "d 1 -2 0", "0"]
        assert proof.ends_with_empty_clause

    def test_disabled_by_default(self):
        solver = Solver()
        assert solver.proof is None


class TestRefutations:
    def test_trivial_contradiction(self):
        sat, proof = _solve_logged(1, [[1], [-1]])
        assert not sat
        assert proof.ends_with_empty_clause
        assert check_rup_proof([[1], [-1]], proof)

    @pytest.mark.parametrize("pigeons,holes", [(3, 2), (4, 3), (5, 4)])
    def test_pigeonhole_proofs_verify(self, pigeons, holes):
        num_vars, clauses = _php_clauses(pigeons, holes)
        sat, proof = _solve_logged(num_vars, clauses)
        assert not sat
        assert check_rup_proof(clauses, proof), "proof must verify"

    def test_random_unsat_proofs_verify(self):
        rng = random.Random(31)
        checked = 0
        while checked < 25:
            n = rng.randint(3, 7)
            clauses = random_clauses(rng, n, rng.randint(10, 30))
            if brute_force_sat(n, clauses):
                continue
            sat, proof = _solve_logged(n, clauses)
            assert not sat
            assert check_rup_proof(clauses, proof), clauses
            checked += 1

    def test_sat_formulas_produce_no_refutation(self):
        sat, proof = _solve_logged(2, [[1, 2]])
        assert sat
        assert not proof.ends_with_empty_clause

    def test_proofs_with_deletions_verify(self):
        """Force clause-DB reduction so the proof contains 'd' steps."""
        num_vars, clauses = _php_clauses(7, 6)
        solver = Solver(proof_logging=True, restart_base=50)
        solver._max_learnts = 50  # trigger reductions early
        solver.new_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is False
        assert any(op == "d" for op, _ in solver.proof.steps), (
            "reduction should have logged deletions"
        )
        assert check_rup_proof(clauses, solver.proof)

    def test_proofs_with_inprocessing_verify(self):
        """Vivification/subsumption passes log add-then-delete pairs for
        every strengthened or dropped clause; the proof must still chain.
        """
        num_vars, clauses = _php_clauses(7, 6)
        solver = Solver(proof_logging=True, restart_base=30,
                        inprocess_interval=100)
        solver._max_learnts = 50
        solver.new_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is False
        assert solver.stats.inprocessings > 0, (
            "schedule should have fired at least one inprocessing pass"
        )
        assert check_rup_proof(clauses, solver.proof)

    def test_fuzz_inprocessing_proofs_verify(self):
        """Random UNSAT instances under an aggressive inprocessing
        schedule (every few conflicts, fast restarts) keep verifiable
        proofs — the DRAT-coverage check for compaction deletions and
        vivification strengthenings."""
        rng = random.Random(67)
        checked = 0
        while checked < 25:
            n = rng.randint(3, 7)
            clauses = random_clauses(rng, n, rng.randint(10, 30))
            if brute_force_sat(n, clauses):
                continue
            solver = Solver(proof_logging=True, restart_base=4,
                            inprocess_interval=8)
            solver.new_vars(n)
            for clause in clauses:
                solver.add_clause(clause)
            assert solver.solve() is False
            assert check_rup_proof(clauses, solver.proof), clauses
            checked += 1


class TestCheckerRejectsBogus:
    def test_non_rup_addition_rejected(self):
        proof = Proof()
        proof.add([1])  # not implied by an empty formula
        proof.add([])
        assert not check_rup_proof([[1, 2]], proof)

    def test_missing_empty_clause_rejected(self):
        proof = Proof()
        assert not check_rup_proof([[1], [-1]], proof)

    def test_unknown_deletion_rejected(self):
        proof = Proof()
        proof.delete([5, 6])
        proof.add([])
        assert not check_rup_proof([[1], [-1]], proof)

    def test_tampered_proof_rejected(self):
        num_vars, clauses = _php_clauses(4, 3)
        sat, proof = _solve_logged(num_vars, clauses)
        assert not sat
        # Drop a random derivation step: the chain should usually break.
        # (Some steps are redundant; removing the FIRST addition of the
        # empty clause always breaks it.)
        tampered = Proof(steps=[
            (op, lits) for op, lits in proof.steps if lits
        ])
        assert not check_rup_proof(clauses, tampered)
