"""Fault injection against the daemon's real transports.

Each scenario asserts the daemon's two invariants under failure:

1. The failure maps to a clean structured error (or a graceful drain) —
   never a traceback on the socket.
2. The daemon survives: subsequent requests succeed and no pool session
   is orphaned (``in_use`` returns to zero).

Scenarios: malformed envelope JSON, oversized HTTP body, oversized
NDJSON line, client disconnect mid-stream, solver exception mid-query
(session poisoning), and shutdown while a solve is inflight.
"""

from __future__ import annotations

import json
import os
import socket
import time

import pytest

from repro.core.design import DesignRequest
from repro.core.session import ReasoningSession
from repro.kb.hardware import Hardware, NICSpec, ServerSpec
from repro.kb.registry import KnowledgeBase
from repro.kb.system import System
from repro.kb.workload import Workload
from repro.knowledge import default_knowledge_base
from repro.logic.ast import TRUE
from repro.serve import DaemonConfig, InprocDaemon, ReasoningDaemon
from repro.serve.client import DaemonClient, make_envelope
from repro.serve.protocol import canonical_json


def _kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_system(System(
        name="StackA", category="network_stack",
        solves=["packet_processing"], requires=TRUE,
    ))
    kb.add_system(System(
        name="StackB", category="network_stack",
        solves=["packet_processing"], requires=TRUE,
    ))
    kb.add_hardware(Hardware(
        spec=NICSpec(model="NIC", rate_gbps=25, power_w=10, cost_usd=200),
        max_units=4,
    ))
    kb.add_hardware(Hardware(
        spec=ServerSpec(model="Box", cores=32, mem_gb=128, power_w=400,
                        cost_usd=5000),
        max_units=4,
    ))
    return kb


def _request() -> DesignRequest:
    return DesignRequest(workloads=[
        Workload(name="app", objectives=["packet_processing"]),
    ])


def _wait_pool_quiesced(daemon, deadline_s: float = 5.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if daemon.pool.in_use == 0 and daemon.admission.inflight == 0:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"pool did not quiesce: in_use={daemon.pool.in_use} "
        f"inflight={daemon.admission.inflight}"
    )


@pytest.fixture
def served(tmp_path):
    """A daemon with both transports bound, plus its endpoints."""
    config = DaemonConfig(
        port=0,
        unix_path=str(tmp_path / "reasond.sock"),
        pool_size=4, threads=2, max_inflight=4, queue_limit=16,
        max_body_bytes=2048,
    )
    daemon = ReasoningDaemon(_kb(), config)
    harness = InprocDaemon(daemon, start_transports=True).start()
    try:
        yield daemon, f"http://127.0.0.1:{daemon.port}", config.unix_path
    finally:
        harness.stop()


@pytest.mark.timeout(120)
class TestMalformedInput:
    def test_unix_malformed_json_then_recovers(self, served):
        daemon, _url, unix_path = served
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(10)
            sock.connect(unix_path)
            reader = sock.makefile("rb")
            sock.sendall(b'{"verb": "check", not json}\n')
            payload = json.loads(reader.readline())
            assert payload["ok"] is False
            assert payload["error"]["code"] == "bad_request"
            assert "Traceback" not in payload["error"]["message"]
            # Same connection still serves valid requests.
            sock.sendall(
                canonical_json(make_envelope("check", _request())) + b"\n"
            )
            payload = json.loads(reader.readline())
            assert payload["ok"] is True
        _wait_pool_quiesced(daemon)

    def test_http_oversized_body_is_413(self, served):
        daemon, url, _unix = served
        big = make_envelope("check", _request())
        big["padding"] = "x" * 8192  # > max_body_bytes=2048
        with DaemonClient(url=url, timeout=10) as client:
            payload = client.query(big)
        assert payload["ok"] is False
        assert payload["error"]["code"] == "oversized"
        # The daemon is still serving.
        with DaemonClient(url=url, timeout=10) as client:
            assert client.healthz()["ok"] is True
            assert client.query(make_envelope("check", _request()))["ok"]
        _wait_pool_quiesced(daemon)

    def test_unix_oversized_line_rejected_and_closed(self, served):
        daemon, _url, unix_path = served
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(10)
            sock.connect(unix_path)
            reader = sock.makefile("rb")
            # Exceeds the stream limit (max_body_bytes + 64KiB slack):
            # the line cannot be resynchronized, so the daemon answers
            # structurally and closes.
            sock.sendall(b"x" * 131072 + b"\n")
            payload = json.loads(reader.readline())
            assert payload["ok"] is False
            assert payload["error"]["code"] == "oversized"
            assert reader.readline() == b""  # connection closed
        # A fresh connection is unaffected.
        with DaemonClient(unix_path=unix_path, timeout=10) as client:
            assert client.query(make_envelope("check", _request()))["ok"]
        _wait_pool_quiesced(daemon)


@pytest.mark.timeout(120)
class TestDisconnects:
    def test_client_disconnect_mid_stream(self, served):
        daemon, _url, unix_path = served
        envelope = make_envelope(
            "enumerate", _request(), options={"limit": 2}, stream=True
        )
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(10)
            sock.connect(unix_path)
            reader = sock.makefile("rb")
            sock.sendall(canonical_json(envelope) + b"\n")
            header = json.loads(reader.readline())
            assert header["ok"] is True and header["stream"] is True
            # Hang up with item/footer frames still unread.
        _wait_pool_quiesced(daemon)
        # The daemon survives and the pool session was returned.
        with DaemonClient(unix_path=unix_path, timeout=10) as client:
            frames = client.query(envelope)
            assert frames[-1]["done"] is True
            assert frames[-1]["count"] >= 1


@pytest.mark.timeout(120)
class TestClientReconnect:
    """A long-lived DaemonClient must survive a daemon restart: its
    cached keep-alive connection goes stale, and the next query has to
    transparently reconnect and resend — on both transports."""

    def _daemon(self, port=0, unix_path=None):
        config = DaemonConfig(
            port=port, unix_path=unix_path, pool_size=2, threads=1,
        )
        daemon = ReasoningDaemon(_kb(), config)
        return daemon, InprocDaemon(daemon, start_transports=True).start()

    def test_http_client_survives_server_restart(self):
        daemon, harness = self._daemon()
        port = daemon.port
        client = DaemonClient(url=f"http://127.0.0.1:{port}", timeout=30)
        try:
            assert client.query(make_envelope("check", _request()))["ok"]
            harness.stop()
            # Same port, fresh daemon: the client's cached connection is
            # now a dead socket.
            daemon, harness = self._daemon(port=port)
            assert client.query(make_envelope("check", _request()))["ok"]
            assert client.healthz()["ok"] is True
        finally:
            client.close()
            harness.stop()

    def test_unix_client_survives_server_restart(self, tmp_path):
        path = str(tmp_path / "reasond.sock")
        daemon, harness = self._daemon(port=None, unix_path=path)
        client = DaemonClient(unix_path=path, timeout=30)
        try:
            assert client.query(make_envelope("check", _request()))["ok"]
            harness.stop()
            if os.path.exists(path):
                os.unlink(path)
            daemon, harness = self._daemon(port=None, unix_path=path)
            assert client.query(make_envelope("check", _request()))["ok"]
            # Streams work over the reconnected socket too.
            frames = client.query(make_envelope(
                "enumerate", _request(), options={"limit": 2}, stream=True,
            ))
            assert frames[-1]["done"] is True
        finally:
            client.close()
            harness.stop()


@pytest.mark.timeout(120)
class TestSolverFaults:
    def test_solver_exception_poisons_and_discards_session(
        self, served, monkeypatch
    ):
        daemon, url, _unix = served
        with DaemonClient(url=url, timeout=30) as client:
            # Warm a session so the fault hits a *pooled* one.
            assert client.query(make_envelope("check", _request()))["ok"]

            original = ReasoningSession.view
            calls = {"n": 0}

            def exploding_view(self, request):
                calls["n"] += 1
                raise RuntimeError("injected solver fault")

            monkeypatch.setattr(ReasoningSession, "view", exploding_view)
            payload = client.query(make_envelope("check", _request()))
            assert payload["ok"] is False
            assert payload["error"]["code"] == "internal"
            assert "injected solver fault" in payload["error"]["message"]
            assert "Traceback" not in payload["error"]["message"]
            assert calls["n"] == 1

            # The corrupted session must have been discarded, and the
            # next request (fault removed) gets a clean replacement.
            monkeypatch.setattr(ReasoningSession, "view", original)
            assert daemon.pool.stats.discarded_poisoned == 1
            payload = client.query(make_envelope("check", _request()))
            assert payload["ok"] is True
        _wait_pool_quiesced(daemon)

    def test_shutdown_while_solving_drains(self):
        # The full KB's first compile holds a worker for ~200ms — a wide
        # window to issue stop() while the solve is inflight.
        daemon = ReasoningDaemon(
            default_knowledge_base(),
            DaemonConfig(port=None, pool_size=2, threads=1,
                         drain_timeout=30.0),
        )
        from repro.knowledge.casestudy import more_workloads_request

        request = more_workloads_request()
        harness = InprocDaemon(daemon).start()
        try:
            inflight = harness.submit(daemon.handle(
                make_envelope("check", request, request_id="inflight")
            ))
            time.sleep(0.05)
            drained = harness.submit(daemon.stop(drain=True)).result(60)
            assert drained is True
            # The inflight request completed normally during the drain.
            reply = inflight.result(timeout=60)
            assert reply.payload["ok"] is True, reply.payload
            # New work is refused with a structured error.
            refused = harness.submit(daemon.handle(
                make_envelope("check", request, request_id="late")
            )).result(timeout=10)
            assert refused.payload["ok"] is False
            assert refused.payload["error"]["code"] == "draining"
            assert daemon.pool.in_use == 0
        finally:
            harness.stop()
