"""Integration tests for the reasoning engine over small knowledge bases."""

from __future__ import annotations

import pytest

from repro.core.design import DesignRequest
from repro.core.engine import ReasoningEngine
from repro.errors import UnknownEntityError
from repro.kb.dsl import ctx, prop, sys_var
from repro.kb.rules import Rule
from repro.kb.system import Feature, System
from repro.kb.workload import Workload
from repro.logic.ast import Implies, Not


def _request(**kwargs) -> DesignRequest:
    defaults = dict(
        workloads=[Workload(name="app", objectives=["packet_processing"])],
    )
    defaults.update(kwargs)
    return DesignRequest(**defaults)


class TestFeasibility:
    def test_simple_synthesis(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        outcome = engine.synthesize(_request())
        assert outcome.feasible
        assert any(
            s in ("StackA", "StackB") for s in outcome.solution.systems
        )

    def test_requirement_pulls_hardware(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        outcome = engine.synthesize(
            _request(required_systems=["StackB"])
        )
        assert outcome.feasible
        # StackB needs interrupt polling; only FancyNIC provides it.
        assert outcome.solution.hardware.get("FancyNIC", 0) >= 1

    def test_forbidden_system_respected(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        outcome = engine.synthesize(
            _request(forbidden_systems=["StackA"])
        )
        assert outcome.feasible
        assert "StackA" not in outcome.solution.systems
        assert "StackB" in outcome.solution.systems

    def test_unsolvable_objective_infeasible(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        outcome = engine.synthesize(_request(
            workloads=[Workload(name="app", objectives=["teleportation"])],
        ))
        assert not outcome.feasible
        assert "objective:teleportation" in outcome.conflict.constraints

    def test_unknown_system_in_request(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        with pytest.raises(UnknownEntityError):
            engine.synthesize(_request(required_systems=["Ghost"]))

    def test_check_exact_deployment(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        good = engine.check(_request(), deploy=["StackA"])
        assert good.feasible
        assert good.solution.systems == ["StackA"]
        bad = engine.check(
            _request(workloads=[Workload(
                name="app",
                objectives=["packet_processing", "detect_queue_length"],
            )]),
            deploy=["StackA"],  # monitor missing
        )
        assert not bad.feasible


class TestConflictsAndDiagnosis:
    def test_conflicting_systems(self, tiny_kb):
        tiny_kb.add_system(System(
            name="Jammer", category="monitoring", solves=["jam"],
            conflicts=["StackA"],
        ))
        engine = ReasoningEngine(tiny_kb)
        outcome = engine.synthesize(_request(
            workloads=[Workload(name="app",
                                objectives=["packet_processing", "jam"])],
            forbidden_systems=["StackB"],
        ))
        assert not outcome.feasible
        names = outcome.conflict.constraints
        assert any(name.startswith("conflict:") for name in names)

    def test_diagnosis_is_minimal(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        conflict = engine.diagnose(_request(
            required_systems=["StackA"],
            forbidden_systems=["StackA"],
        ))
        assert conflict is not None
        assert set(conflict.constraints) == {
            "required:StackA", "forbidden:StackA",
        }

    def test_diagnosis_none_when_feasible(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        assert engine.diagnose(_request()) is None

    def test_explanation_text(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        conflict = engine.diagnose(_request(
            required_systems=["StackA"],
            forbidden_systems=["StackA"],
        ))
        text = conflict.explanation()
        assert "required:StackA" in text and "forbidden:StackA" in text


class TestRulesAndContext:
    def test_hard_rule_blocks_combination(self, tiny_kb):
        tiny_kb.add_system(System(
            name="Flooder", category="monitoring", solves=["flood_service"],
            provides=["net::FLOODING"],
        ))
        tiny_kb.add_system(System(
            name="PFCUser", category="transport_protocol", solves=["lossless"],
            provides=["net::PFC_ENABLED"],
        ))
        tiny_kb.add_rule(Rule(
            name="pfc_no_flooding",
            formula=Implies(prop("net", "PFC_ENABLED"),
                            Not(prop("net", "FLOODING"))),
        ))
        engine = ReasoningEngine(tiny_kb)
        outcome = engine.synthesize(_request(
            workloads=[Workload(
                name="app",
                objectives=["packet_processing", "flood_service", "lossless"],
            )],
        ))
        assert not outcome.feasible
        assert "rule:pfc_no_flooding" in outcome.conflict.constraints

    def test_context_gates_requirement(self, tiny_kb):
        tiny_kb.add_system(System(
            name="FastOnly", category="monitoring", solves=["speed"],
            requires=ctx("network_load_ge_40g"),
        ))
        engine = ReasoningEngine(tiny_kb)
        workload = Workload(name="app",
                            objectives=["packet_processing", "speed"])
        slow = engine.synthesize(_request(workloads=[workload]))
        assert not slow.feasible
        fast = engine.synthesize(_request(
            workloads=[workload],
            context={"network_load_ge_40g": True},
        ))
        assert fast.feasible

    def test_given_properties(self, tiny_kb):
        tiny_kb.add_system(System(
            name="Edgy", category="firewall", solves=["edge_filtering"],
            requires=prop("site", "EDGE_RESOURCES"),
        ))
        engine = ReasoningEngine(tiny_kb)
        workload = Workload(name="app",
                            objectives=["packet_processing", "edge_filtering"])
        without = engine.synthesize(_request(workloads=[workload]))
        assert not without.feasible
        granted = engine.synthesize(_request(
            workloads=[workload],
            given_properties=["site::EDGE_RESOURCES"],
        ))
        assert granted.feasible

    def test_research_gate(self, tiny_kb):
        tiny_kb.add_system(System(
            name="Proto", category="monitoring", solves=["lab_magic"],
            research=True,
        ))
        engine = ReasoningEngine(tiny_kb)
        workload = Workload(name="app",
                            objectives=["packet_processing", "lab_magic"])
        blocked = engine.synthesize(_request(workloads=[workload]))
        assert not blocked.feasible
        allowed = engine.synthesize(_request(
            workloads=[workload],
            given_properties=["site::RESEARCH_OK"],
        ))
        assert allowed.feasible

    def test_feature_requires(self, tiny_kb):
        tiny_kb.add_system(System(
            name="Modal", category="monitoring", solves=["modal"],
            features=[Feature("boost", requires=prop("site", "APP_MODIFIABLE"))],
        ))
        engine = ReasoningEngine(tiny_kb)
        workload = Workload(name="app",
                            objectives=["packet_processing", "modal"])
        outcome = engine.synthesize(_request(workloads=[workload]))
        assert outcome.feasible
        # Feature off by default; forcing it on without the property fails.
        compiled = engine.compile(_request(workloads=[workload]))
        feat_lit = compiled.feat_lits[("Modal", "boost")]
        assert not compiled.solve([feat_lit])

    def test_soft_rule_steers_choice(self, tiny_kb):
        tiny_kb.add_rule(Rule(
            name="avoid_stack_a",
            formula=Not(sys_var("StackA")),
            severity="soft",
            weight=3,
        ))
        engine = ReasoningEngine(tiny_kb)
        outcome = engine.synthesize(_request())
        assert outcome.feasible
        assert "StackA" not in outcome.solution.systems


class TestResourceAccounting:
    def test_core_demand_forces_servers(self, resource_kb):
        engine = ReasoningEngine(resource_kb)
        outcome = engine.synthesize(_request(
            workloads=[Workload(
                name="app",
                objectives=["packet_processing", "flow_telemetry"],
                peak_cores=50,
            )],
        ))
        assert outcome.feasible
        # CoreHog (100) + workload (50) = 150 cores -> >= 5 Box servers.
        assert outcome.solution.hardware.get("Box", 0) >= 5

    def test_capacity_ceiling_infeasible(self, resource_kb):
        engine = ReasoningEngine(resource_kb)
        outcome = engine.synthesize(_request(
            workloads=[Workload(
                name="app",
                objectives=["packet_processing"],
                peak_cores=8 * 32 + 1,  # one more than 8 Boxes provide
            )],
        ))
        assert not outcome.feasible
        assert "resource:cpu_cores" in outcome.conflict.constraints

    def test_fixed_hardware_freeze(self, resource_kb):
        engine = ReasoningEngine(resource_kb)
        outcome = engine.synthesize(_request(
            workloads=[Workload(
                name="app",
                objectives=["packet_processing"],
                peak_cores=64,
            )],
            fixed_hardware={"Box": 2},
        ))
        assert outcome.feasible
        assert outcome.solution.hardware["Box"] == 2
        too_small = engine.synthesize(_request(
            workloads=[Workload(
                name="app",
                objectives=["packet_processing"],
                peak_cores=96,
            )],
            fixed_hardware={"Box": 2},
        ))
        assert not too_small.feasible
        assert "fixed_hardware:Box" in too_small.conflict.constraints

    def test_budget_constraint(self, resource_kb):
        engine = ReasoningEngine(resource_kb)
        outcome = engine.synthesize(_request(
            workloads=[Workload(
                name="app",
                objectives=["packet_processing"],
                peak_cores=64,
            )],
            budgets={"capex_usd": 9_000},  # 2 Boxes would cost 10k
        ))
        assert not outcome.feasible
        assert "budget:capex_usd" in outcome.conflict.constraints

    def test_memory_demand(self, resource_kb):
        engine = ReasoningEngine(resource_kb)
        outcome = engine.synthesize(_request(
            workloads=[Workload(
                name="app",
                objectives=["packet_processing"],
                peak_mem_gb=300,
            )],
        ))
        assert outcome.feasible
        assert outcome.solution.hardware.get("Box", 0) >= 3  # 128 GB each

    def test_ledger_reported(self, resource_kb):
        engine = ReasoningEngine(resource_kb)
        outcome = engine.synthesize(_request(
            workloads=[Workload(
                name="app",
                objectives=["packet_processing", "flow_telemetry"],
                peak_cores=10,
            )],
        ))
        ledger = outcome.solution.ledger
        assert ledger.demands["cpu_cores"] == 110
        assert ledger.deficits() == {}


class TestOptimization:
    def test_capex_minimized(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        outcome = engine.synthesize(_request(optimize=["capex_usd"]))
        assert outcome.feasible
        # Cheapest compliant build: StackA + no fancy NIC requirements;
        # common sense needs a stack, servers need NICs, one switch.
        assert outcome.solution.cost_usd <= 26_000

    def test_common_sense_toggle(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        with_cs = engine.synthesize(_request())
        assert any(
            switch.startswith("Tor")
            for switch in with_cs.solution.hardware
        ) or with_cs.solution.hardware
        without_cs = engine.synthesize(_request(include_common_sense=False))
        assert without_cs.feasible

    def test_equivalence_classes(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        classes = engine.equivalence_classes(
            _request(), class_limit=16, completions_limit=4,
        )
        assert classes
        deployments = {tuple(c.systems) for c in classes}
        # Both stacks alone must appear as distinct classes.
        assert ("StackA",) in deployments
        assert ("StackB",) in deployments

    def test_compare(self, tiny_kb):
        engine = ReasoningEngine(tiny_kb)
        baseline = _request(optimize=["capex_usd"])
        alternative = _request(
            required_systems=["StackB"], optimize=["capex_usd"]
        )
        result = engine.compare(baseline, alternative)
        assert result.both_feasible
        assert result.cost_delta() >= 0  # StackB needs the pricier NIC
